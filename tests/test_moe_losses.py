"""Tests for auxiliary gating losses and load metrics."""

import numpy as np
import pytest

from repro.moe import TopKGate, balanced_fractions, imbalanced_fractions, routing_from_fractions
from repro.moe.gate import GateOutput
from repro.moe.losses import (
    load_balancing_loss,
    load_metrics,
    router_z_loss,
)


def gate_output_from(probs: np.ndarray, topk: int) -> GateOutput:
    order = np.argsort(-probs, axis=1)[:, :topk]
    rows = np.arange(probs.shape[0])[:, None]
    raw = probs[rows, order]
    return GateOutput(
        experts=order,
        weights=(raw / raw.sum(axis=1, keepdims=True)).astype(np.float32),
        probs=probs,
    )


class TestLoadBalancingLoss:
    def test_uniform_router_gives_one(self):
        e = 8
        probs = np.full((256, e), 1.0 / e)
        # Uniform probabilities tie; assignments spread round-robin-ish via
        # argsort determinism, so build a perfectly balanced assignment.
        experts = np.stack(
            [np.arange(256) % e, (np.arange(256) + 1) % e], axis=1
        )
        out = GateOutput(
            experts=experts,
            weights=np.full((256, 2), 0.5, dtype=np.float32),
            probs=probs,
        )
        assert load_balancing_loss(out, e) == pytest.approx(1.0)

    def test_concentrated_router_exceeds_one(self):
        e = 8
        probs = np.zeros((64, e))
        probs[:, 0] = 0.9
        probs[:, 1:] = 0.1 / (e - 1)
        out = gate_output_from(probs, topk=2)
        assert load_balancing_loss(out, e) > 1.5

    def test_real_gate_near_one(self):
        rng = np.random.default_rng(0)
        gate = TopKGate(32, 8, 2, rng=rng)
        x = rng.normal(size=(2048, 32)).astype(np.float32)
        loss = load_balancing_loss(gate(x), 8)
        assert 0.9 < loss < 1.5  # near-uniform random gate

    def test_empty_batch(self):
        out = GateOutput(
            experts=np.zeros((0, 2), dtype=int),
            weights=np.zeros((0, 2), dtype=np.float32),
            probs=np.zeros((0, 8)),
        )
        assert load_balancing_loss(out, 8) == 0.0

    def test_invalid_experts(self):
        rng = np.random.default_rng(0)
        gate = TopKGate(8, 4, 2, rng=rng)
        out = gate(rng.normal(size=(4, 8)).astype(np.float32))
        with pytest.raises(ValueError):
            load_balancing_loss(out, 0)


class TestRouterZLoss:
    def test_zero_logits(self):
        logits = np.zeros((16, 8))
        # logsumexp(0-vector of len 8) = log(8)
        assert router_z_loss(logits) == pytest.approx(np.log(8) ** 2)

    def test_grows_with_logit_scale(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(64, 8))
        assert router_z_loss(10 * logits) > router_z_loss(logits)

    def test_empty(self):
        assert router_z_loss(np.zeros((0, 8))) == 0.0

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            router_z_loss(np.zeros(8))


class TestLoadMetrics:
    def test_uniform_plan(self):
        plan = routing_from_fractions(16000, 2, balanced_fractions(8))
        metrics = load_metrics(plan)
        assert metrics.fraction_std < 0.01
        assert metrics.max_over_mean < 1.1
        assert metrics.entropy == pytest.approx(np.log(8), abs=0.01)
        assert metrics.empty_experts == 0

    def test_skewed_plan(self):
        rng = np.random.default_rng(0)
        plan = routing_from_fractions(
            16000, 2, imbalanced_fractions(8, 0.05, rng), rng
        )
        metrics = load_metrics(plan)
        assert metrics.fraction_std == pytest.approx(0.05, abs=0.01)
        assert metrics.max_over_mean > 1.2
        assert metrics.entropy < np.log(8)

    def test_metrics_track_figure14_knob(self):
        """load_metrics.fraction_std recovers make_workload's imbalance."""
        from repro.hw import h800_node
        from repro.moe import MIXTRAL_8X7B
        from repro.parallel import ParallelStrategy
        from repro.runtime import make_workload

        for std in (0.0, 0.032, 0.05):
            workload = make_workload(
                MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 16384,
                imbalance_std=std, seed=2,
            )
            measured = load_metrics(workload.plan).fraction_std
            assert measured == pytest.approx(std, abs=0.012)

    def test_empty_plan(self):
        from repro.moe import RoutingPlan

        plan = RoutingPlan(
            experts=np.zeros((0, 2), dtype=int),
            weights=np.zeros((0, 2), dtype=np.float32),
            num_experts=4,
        )
        metrics = load_metrics(plan)
        assert metrics.empty_experts == 4
