"""Unit tests: compiled-topology scheduling and graph symmetry reduction.

Every fast path introduced by the raw-speed round-2 work must be *bit*
identical (``==`` on every float, never approximate) to the retained
list scheduler:

* :func:`repro.graph.batch.fast_schedule` — the compiled max/add
  recurrence on chain topologies, with an exact-verification fallback;
* :func:`repro.graph.batch.schedule_batch` — the numpy batch form over
  same-topology duration vectors;
* :func:`repro.graph.scheduler.reduce_symmetry` /
  :func:`~repro.graph.scheduler.expand_symmetry` — the rank-equivalence
  fold for rank-blocked multi-rank graphs;
* :func:`repro.perf.cached_graph_schedule` — the integration point that
  composes all of the above behind the perf flags.
"""

import pytest

from repro import perf
from repro.graph import (
    COMM,
    COMPUTE,
    LayerPhase,
    NodeKind,
    ScheduleGraph,
    StragglerSpec,
    Stream,
    build_forward_graph,
    build_training_graph,
    compile_topology,
    des_schedule,
    expand_symmetry,
    fast_schedule,
    list_schedule,
    reduce_symmetry,
    schedule_batch,
)

PHASES = (
    LayerPhase(NodeKind.GATE, 12.0),
    LayerPhase(NodeKind.DISPATCH, 40.0, comm=True),
    LayerPhase(NodeKind.EXPERT, 55.0),
    LayerPhase(NodeKind.ACTIVATION, 6.0),
    LayerPhase(NodeKind.EXPERT, 48.0),
    LayerPhase(NodeKind.COMBINE, 33.0, comm=True),
    LayerPhase(NodeKind.HOST, 3.0),
)


def _forward(policy="per_layer", stragglers=None, num_layers=4):
    return build_forward_graph(PHASES, 25.0, num_layers, policy, stragglers)


def _assert_identical(schedule, reference):
    assert schedule.start_us == reference.start_us
    assert schedule.finish_us == reference.finish_us
    assert schedule.rank_makespans() == reference.rank_makespans()


class TestCompiledTopology:
    def test_empty_graph(self):
        graph = ScheduleGraph()
        topo = compile_topology(graph)
        assert topo.chain_ok and topo.num_nodes == 0
        assert fast_schedule(graph, topo).finish_us == ()

    def test_per_layer_forward_is_chain(self):
        topo = compile_topology(_forward("per_layer"))
        assert topo.chain_ok

    def test_cross_layer_forward_is_chain(self):
        topo = compile_topology(_forward("cross_layer"))
        assert topo.chain_ok

    def test_shortcut_is_not_chain(self):
        # Gate and attention are independently ready on one compute
        # stream under shortcut: dispatch order depends on durations, so
        # the recurrence is unsound and must be refused.
        topo = compile_topology(_forward("shortcut"))
        assert not topo.chain_ok

    def test_cross_layer_training_is_not_chain(self):
        graph = build_training_graph(
            PHASES, PHASES, 25.0, 50.0, 3, 80.0, 20.0, "cross_layer"
        )
        assert not compile_topology(graph).chain_ok

    def test_fallback_still_identical(self):
        graph = _forward("shortcut")
        _assert_identical(fast_schedule(graph), list_schedule(graph))

    def test_topology_fingerprint_ignores_durations(self):
        slow = StragglerSpec.slow_rank(4, rank=1, compute_mult=1.5)
        slower = StragglerSpec.slow_rank(4, rank=1, compute_mult=2.5)
        a = _forward(stragglers=slow)
        b = _forward(stragglers=slower)
        assert a.fingerprint() != b.fingerprint()
        assert a.topology_fingerprint() == b.topology_fingerprint()

    def test_node_count_mismatch_rejected(self):
        topo = compile_topology(_forward(num_layers=2))
        with pytest.raises(ValueError):
            fast_schedule(_forward(num_layers=3), topo)


class TestFastSchedule:
    @pytest.mark.parametrize("policy", ["per_layer", "cross_layer", "shortcut"])
    def test_single_rank_identical(self, policy):
        graph = _forward(policy)
        _assert_identical(fast_schedule(graph), list_schedule(graph))

    @pytest.mark.parametrize("policy", ["per_layer", "cross_layer"])
    def test_straggler_graph_identical(self, policy):
        spec = StragglerSpec.slow_rank(8, rank=3, compute_mult=1.7, comm_mult=1.2)
        graph = _forward(policy, stragglers=spec)
        assert compile_topology(graph).chain_ok
        reference = list_schedule(graph)
        _assert_identical(fast_schedule(graph), reference)
        finish, makespan = des_schedule(graph)
        assert finish == reference.finish_us
        assert makespan == reference.makespan_us

    def test_training_per_layer_identical(self):
        spec = StragglerSpec.slow_rank(4, rank=0, compute_mult=1.5)
        graph = build_training_graph(
            PHASES, PHASES, 25.0, 50.0, 3, 80.0, 20.0, "per_layer", spec
        )
        _assert_identical(fast_schedule(graph), list_schedule(graph))


class TestScheduleBatch:
    def test_batches_same_topology(self):
        mults = (1.0, 1.3, 1.7, 2.2, 3.1)
        graphs = [
            _forward(
                stragglers=StragglerSpec.slow_rank(4, rank=2, compute_mult=m)
            )
            for m in mults
        ]
        schedules = schedule_batch(graphs)
        assert len(schedules) == len(graphs)
        for graph, schedule in zip(graphs, schedules):
            assert schedule.graph is graph
            _assert_identical(schedule, list_schedule(graph))

    def test_mixed_topologies_preserve_order(self):
        graphs = [
            _forward("per_layer"),
            _forward("shortcut"),  # non-chain: per-graph fallback
            _forward("per_layer", StragglerSpec.slow_rank(2, 0, 1.5)),
            _forward("cross_layer"),
            _forward("per_layer", StragglerSpec.slow_rank(2, 0, 2.5)),
        ]
        schedules = schedule_batch(graphs)
        assert [s.graph for s in schedules] == graphs
        for graph, schedule in zip(graphs, schedules):
            _assert_identical(schedule, list_schedule(graph))

    def test_empty_batch(self):
        assert schedule_batch([]) == []


class TestSymmetryReduction:
    def test_uniform_graph_collapses_to_one_rank(self):
        spec = StragglerSpec.uniform(8)
        graph = _forward(stragglers=spec)
        symmetry = reduce_symmetry(graph)
        assert symmetry is not None
        assert symmetry.reps == (0,)
        assert symmetry.world == 8
        assert len(symmetry.reduced) == len(graph) // 8

    def test_k_distinct_classes(self):
        # 8 ranks, 2 distinct multiplier classes -> 2 scheduled ranks.
        spec = StragglerSpec(
            compute_mult=(1.0, 1.5, 1.0, 1.5, 1.0, 1.5, 1.0, 1.5),
            comm_mult=(1.0,) * 8,
            expert_mult=(1.0,) * 8,
            name="alternating",
        )
        graph = _forward(stragglers=spec)
        symmetry = reduce_symmetry(graph)
        assert symmetry is not None
        assert symmetry.reps == (0, 1)
        assert symmetry.rep_index == (0, 1, 0, 1, 0, 1, 0, 1)
        expanded = expand_symmetry(
            graph, symmetry, list_schedule(symmetry.reduced)
        )
        _assert_identical(expanded, list_schedule(graph))

    @pytest.mark.parametrize("policy", ["per_layer", "cross_layer", "shortcut"])
    def test_expansion_identical_across_policies(self, policy):
        spec = StragglerSpec.slow_rank(6, rank=4, compute_mult=1.9)
        graph = _forward(policy, stragglers=spec)
        symmetry = reduce_symmetry(graph)
        assert symmetry is not None
        assert symmetry.reps == (0, 4)
        expanded = expand_symmetry(
            graph, symmetry, list_schedule(symmetry.reduced)
        )
        reference = list_schedule(graph)
        _assert_identical(expanded, reference)
        finish, _ = des_schedule(graph)
        assert expanded.finish_us == finish

    def test_training_graph_reduces(self):
        spec = StragglerSpec.slow_rank(4, rank=1, compute_mult=1.4)
        graph = build_training_graph(
            PHASES, PHASES, 25.0, 50.0, 2, 80.0, 20.0, "per_layer", spec
        )
        symmetry = reduce_symmetry(graph)
        assert symmetry is not None
        expanded = expand_symmetry(
            graph, symmetry, list_schedule(symmetry.reduced)
        )
        _assert_identical(expanded, list_schedule(graph))

    def test_all_distinct_ranks_returns_none(self):
        spec = StragglerSpec(
            compute_mult=(1.0, 1.25, 1.5, 1.75),
            comm_mult=(1.0,) * 4,
            expert_mult=(1.0,) * 4,
            name="staircase",
        )
        assert reduce_symmetry(_forward(stragglers=spec)) is None

    def test_single_rank_returns_none(self):
        assert reduce_symmetry(_forward()) is None

    def test_non_blocked_graph_returns_none(self):
        # Hand-built graph whose node order is not rank-blocked.
        graph = ScheduleGraph()
        a = graph.add(NodeKind.EXPERT, 5.0, Stream(COMPUTE, 0))
        b = graph.add(NodeKind.EXPERT, 5.0, Stream(COMPUTE, 1), deps=(a,))
        graph.add(NodeKind.COMBINE, 3.0, Stream(COMM, 0), deps=(a, b))
        assert reduce_symmetry(graph) is None


class TestPerfIntegration:
    def setup_method(self):
        perf.clear_caches()

    def teardown_method(self):
        perf.clear_caches()

    @pytest.mark.parametrize("policy", ["per_layer", "cross_layer", "shortcut"])
    def test_cached_graph_schedule_identical(self, policy):
        spec = StragglerSpec.slow_rank(8, rank=5, compute_mult=1.6)
        graph = _forward(policy, stragglers=spec)
        with perf.disabled():
            reference = list_schedule(graph)
        fast = perf.cached_graph_schedule(graph)
        _assert_identical(fast, reference)

    def test_graph_batch_cache_counts(self):
        spec_a = StragglerSpec.slow_rank(4, rank=0, compute_mult=1.5)
        spec_b = StragglerSpec.slow_rank(4, rank=0, compute_mult=2.0)
        perf.cached_graph_schedule(_forward(stragglers=spec_a))
        first = perf.cache_stats()["graph_batch"]
        # The cache holds the per-topology compiled artifacts (block
        # structure, reduced recurrence, ...): all cold on first use.
        assert first["misses"] > 0 and first["hits"] == 0 and first["size"] > 0
        # Same topology, different durations: every artifact is reused —
        # no new misses, no new entries.
        perf.cached_graph_schedule(_forward(stragglers=spec_b))
        second = perf.cache_stats()["graph_batch"]
        assert second["hits"] > 0
        assert second["misses"] == first["misses"]
        assert second["size"] == first["size"]

    def test_disabled_restores_list_schedule(self):
        graph = _forward(stragglers=StragglerSpec.slow_rank(4, 1, 1.5))
        with perf.disabled():
            schedule = perf.cached_graph_schedule(graph)
            assert len(perf.GRAPH_CACHE) == 0
            assert len(perf.GRAPH_BATCH_CACHE) == 0
        _assert_identical(schedule, list_schedule(graph))

    def test_flags_individually_toggleable(self):
        graph = _forward(stragglers=StragglerSpec.slow_rank(4, 1, 1.5))
        reference = list_schedule(graph)
        for flags in (
            dict(graph_symmetry=False),
            dict(graph_batch=False),
            dict(graph_symmetry=False, graph_batch=False),
        ):
            perf.clear_caches()
            with perf.configure(**flags):
                _assert_identical(perf.cached_graph_schedule(graph), reference)
