"""Resilience-loop semantics: conservation, detection, export gating.

The front-door policy adds two new terminal states (timed out, shed) to
the fleet's request lifecycle.  The invariant under *any* mix of
crashes, degradations, deadlines, retries, and shedding:

- every offered request resolves exactly once, as exactly one of
  completed / timed-out / shed — none lost, none double-counted;
- a fleet with an empty :class:`FaultPlan` and an all-off
  :class:`ResilienceSpec` is bit-identical to one configured with
  neither (the zero-config path must not perturb a single float);
- resilience columns appear in every export format or in none.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DegradeEvent,
    FailureEvent,
    FaultPlan,
    FleetSpec,
    ResilienceSpec,
    TraceSpec,
)

TRACE = TraceSpec(kind="poisson", rps=40, duration_s=2, seed=5)


def run_fleet(trace=TRACE, **kwargs):
    kwargs.setdefault("systems", "comet")
    kwargs.setdefault("replicas", 3)
    return FleetSpec.grid(traces=trace, **kwargs).run().reports[0]


def assert_conserved(report):
    """Every offered request is exactly one of completed/timed-out/shed."""
    rids = [r.rid for r in report.records] + [o.rid for o in report.outcomes]
    assert len(rids) == len(set(rids)), "a request resolved twice"
    assert report.offered == (
        report.num_requests + report.timed_out + report.shed
    ), "a request was lost"
    assert report.unserved == 0
    assert report.timed_out == sum(
        1 for o in report.outcomes if o.kind == "timeout"
    )
    assert report.shed == sum(1 for o in report.outcomes if o.kind == "shed")
    for record in report.records:
        assert record.arrival_ms <= record.first_token_ms <= record.completion_ms


class TestZeroConfigBitIdentity:
    def test_empty_plan_and_all_off_spec_match_plain_run(self):
        plain = FleetSpec.grid(traces=TRACE, replicas=2, systems="comet").run()
        configured = FleetSpec.grid(
            traces=TRACE,
            replicas=2,
            systems="comet",
            faults=FaultPlan(),
            resilience=ResilienceSpec(),
        ).run()
        # Reports are field-for-field identical; only the run manifest's
        # spec fingerprint (provenance of what was *asked for*) differs.
        assert plain.reports[0] == configured.reports[0]
        assert plain.to_rows() == configured.to_rows()

    def test_resilient_run_is_deterministic(self):
        def once():
            return FleetSpec.grid(
                traces=TRACE,
                replicas=2,
                routers="least_queue",
                systems="comet",
                faults=FaultPlan(
                    crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),),
                    degrades=(
                        DegradeEvent(
                            replica=1, t0_ms=200.0, t1_ms=800.0,
                            compute_mult=2.0, comm_mult=2.0,
                        ),
                    ),
                ),
                resilience=ResilienceSpec(
                    timeout_ms=1500.0, max_retries=2, shed_factor=2.0
                ),
            ).run()

        assert once().to_json() == once().to_json()


class TestConservation:
    def test_timeout_retry_shed_partition_offered_load(self):
        report = run_fleet(
            routers="least_queue",
            replicas=2,
            faults=FaultPlan(
                crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),),
            ),
            resilience=ResilienceSpec(
                timeout_ms=1500.0, max_retries=2, shed_factor=2.0
            ),
        )
        assert_conserved(report)

    def test_frontdoor_events_carry_router_replica(self):
        report = run_fleet(
            routers="least_queue",
            replicas=2,
            trace=TraceSpec(kind="bursty", rps=120, duration_s=2, seed=3),
            faults=FaultPlan(
                crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=1500.0),),
            ),
            resilience=ResilienceSpec(
                timeout_ms=800.0, max_retries=1, shed_factor=0.5
            ),
            slo_ttft_ms=300.0,
        )
        assert_conserved(report)
        frontdoor = [
            e for e in report.events if e.kind in ("retry", "timeout", "shed")
        ]
        assert frontdoor, "policy under a crash burst must act at the door"
        assert all(e.replica == -1 for e in frontdoor)
        assert sum(1 for e in report.events if e.kind == "shed") == report.shed
        assert (
            sum(1 for e in report.events if e.kind == "retry") == report.retries
        )


@given(
    fail_ms=st.floats(min_value=100.0, max_value=1500.0),
    outage_ms=st.floats(min_value=50.0, max_value=800.0),
    degrade_mult=st.floats(min_value=1.5, max_value=4.0),
    timeout_ms=st.floats(min_value=400.0, max_value=4000.0),
    max_retries=st.integers(min_value=0, max_value=2),
    shed_factor=st.one_of(st.none(), st.floats(min_value=0.5, max_value=3.0)),
)
@settings(max_examples=10, deadline=None)
def test_any_fault_and_policy_mix_conserves_requests(
    fail_ms, outage_ms, degrade_mult, timeout_ms, max_retries, shed_factor
):
    report = run_fleet(
        routers="least_queue",
        faults=FaultPlan(
            crashes=(
                FailureEvent(
                    replica=0, fail_ms=fail_ms, recover_ms=fail_ms + outage_ms
                ),
            ),
            degrades=(
                DegradeEvent(
                    replica=1,
                    t0_ms=fail_ms / 2,
                    t1_ms=fail_ms + outage_ms,
                    compute_mult=degrade_mult,
                    comm_mult=degrade_mult,
                ),
            ),
        ),
        resilience=ResilienceSpec(
            timeout_ms=timeout_ms,
            max_retries=max_retries,
            shed_factor=shed_factor,
        ),
        slo_ttft_ms=250.0,
    )
    assert_conserved(report)


class TestDegradation:
    def test_static_degrade_hurts_tail_latency_and_emits_markers(self):
        healthy = run_fleet()
        degraded = run_fleet(
            faults=FaultPlan(degrades=(
                DegradeEvent(
                    replica=0, t0_ms=200.0, t1_ms=1800.0,
                    compute_mult=4.0, comm_mult=4.0,
                ),
            )),
        )
        assert (
            degraded.ttft_percentiles()["p99"] > healthy.ttft_percentiles()["p99"]
        )
        kinds = [(e.kind, e.replica) for e in degraded.events]
        assert ("degrade", 0) in kinds and ("restore", 0) in kinds

    def test_detector_probation_recovers_tail_latency(self):
        # Round-robin keeps feeding the straggler; the detector's
        # probation is the only thing that re-routes around it.
        plan = FaultPlan(degrades=(
            DegradeEvent(
                replica=0, t0_ms=500.0, t1_ms=4000.0,
                compute_mult=4.0, comm_mult=4.0,
            ),
        ))
        trace = TraceSpec(kind="poisson", rps=70, duration_s=4.0, seed=11)
        blind, watched = (
            FleetSpec.grid(
                traces=trace,
                replicas=3,
                routers="round_robin",
                systems="comet",
                faults=plan,
                resilience=(
                    None,
                    ResilienceSpec(
                        slow_factor=1.5, check_interval_ms=250.0,
                        health_window_ms=750.0, probation_ms=1500.0,
                        max_probations=1,
                    ),
                ),
            )
            .run()
            .reports
        )
        assert watched.probations >= 1
        assert watched.evictions >= 1  # max_probations=1: second strike evicts
        assert (
            watched.ttft_percentiles()["p99"] < blind.ttft_percentiles()["p99"]
        )
        kinds = [(e.kind, e.replica) for e in watched.events]
        assert ("probation", 0) in kinds and ("evict", 0) in kinds
        assert_conserved(watched)


class TestExportGating:
    def _plain(self):
        return FleetSpec.grid(traces=TRACE, replicas=2, systems="comet").run()

    def _resilient(self):
        return FleetSpec.grid(
            traces=TRACE,
            replicas=2,
            routers="least_queue",
            systems="comet",
            faults=FaultPlan(
                crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),),
            ),
            resilience=ResilienceSpec(
                timeout_ms=1500.0, max_retries=1, shed_factor=2.0
            ),
        ).run()

    def test_plain_exports_hide_resilience_columns(self):
        results = self._plain()
        headers, _ = results.to_rows()
        for key in ("timed_out", "shed", "retries", "probations", "evictions"):
            assert key not in headers
        assert '"outcomes"' not in results.to_json()
        assert "resilience" not in results.to_csv()

    def test_resilient_exports_show_columns_in_every_format(self):
        results = self._resilient()
        headers, rows = results.to_rows()
        for key in ("timed_out", "shed", "retries", "probations", "evictions"):
            assert key in headers
        assert len(rows[0]) == len(headers)
        json_text = results.to_json()
        assert '"resilience"' in json_text and '"outcomes"' in json_text
        csv_head = results.to_csv().splitlines()[0]
        assert "timed_out" in csv_head and "evictions" in csv_head


class TestTimelineRendering:
    def test_fault_and_frontdoor_events_render_in_chrome_trace(self):
        from repro.obs import trace_fleet_report, validate_chrome_trace

        report = run_fleet(
            routers="least_queue",
            replicas=2,
            trace=TraceSpec(kind="bursty", rps=120, duration_s=2, seed=3),
            faults=FaultPlan(
                crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=1500.0),),
                degrades=(
                    DegradeEvent(
                        replica=1, t0_ms=200.0, t1_ms=1000.0,
                        compute_mult=2.0, comm_mult=2.0,
                    ),
                ),
            ),
            resilience=ResilienceSpec(
                timeout_ms=800.0, max_retries=1, shed_factor=0.5
            ),
            slo_ttft_ms=300.0,
        )
        tracer = trace_fleet_report(report)
        doc = tracer.to_chrome_trace()
        counts = validate_chrome_trace(doc, check_overlap=True)
        # every fleet event became an instant, flows stay paired
        assert counts["i"] >= len(report.events)
        assert counts["s"] == counts["f"]
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert {"degrade", "restore", "fail", "recover"} <= names
        frontdoor = [e for e in report.events if e.replica == -1]
        assert frontdoor
        router_pids = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "process_name"
            and e["args"]["name"] == "router"
        }
        rendered = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "i" and e["name"] in ("retry", "timeout", "shed")
        ]
        assert len(rendered) == len(frontdoor)
        assert all(e["pid"] in router_pids for e in rendered)
        # the cumulative counter track exists whenever the door acted
        assert any(
            e["ph"] == "C" and e["name"] == "resilience"
            for e in doc["traceEvents"]
        )
