"""Property-based schedule-equivalence tests (the core COMET invariant).

Rescheduling shared tensors (paper §3.1.2) must never change the math —
any routing plan, any imbalance, any column block size, any local rank.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import (
    ExpertWeights,
    balanced_fractions,
    imbalanced_fractions,
    reference_moe_forward,
    routing_from_fractions,
    token_owner_ranks,
)
from repro.tensor import (
    build_layer0_schedule,
    build_layer1_schedule,
    layer0_rescheduled_forward,
    layer1_columnwise_forward,
)


@st.composite
def moe_cases(draw):
    experts = draw(st.sampled_from([2, 4, 8]))
    topk = draw(st.integers(min_value=1, max_value=min(3, experts)))
    tokens = draw(st.integers(min_value=1, max_value=96))
    world = draw(st.sampled_from([1, 2, 4]))
    hidden = draw(st.sampled_from([8, 16, 33]))
    ffn = draw(st.sampled_from([12, 24]))
    std = draw(st.sampled_from([0.0, 0.04]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    col_block = draw(st.sampled_from([1, 5, 16, 128]))
    local_rank = draw(st.integers(min_value=0, max_value=world - 1))
    return experts, topk, tokens, world, hidden, ffn, std, seed, col_block, local_rank


@given(case=moe_cases())
@settings(max_examples=60, deadline=None)
def test_comet_schedule_equals_reference(case):
    experts, topk, tokens, world, hidden, ffn, std, seed, col_block, local_rank = case
    rng = np.random.default_rng(seed)
    if std > 0:
        fractions = imbalanced_fractions(experts, std, rng)
    else:
        fractions = balanced_fractions(experts)
    plan = routing_from_fractions(tokens, topk, fractions, rng)
    owner = token_owner_ranks(tokens, world)
    weights = ExpertWeights.init(experts, hidden, ffn, rng)
    x = rng.normal(size=(tokens, hidden)).astype(np.float32)

    reference = reference_moe_forward(x, plan, weights)
    acts = layer0_rescheduled_forward(x, plan, weights, owner, local_rank)
    rescheduled = layer1_columnwise_forward(acts, plan, weights, col_block)
    np.testing.assert_allclose(rescheduled, reference, rtol=2e-4, atol=2e-5)


@st.composite
def schedule_cases(draw):
    world = draw(st.sampled_from([2, 4, 8]))
    experts = draw(st.integers(min_value=1, max_value=8))
    pairs = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=300), min_size=experts, max_size=experts),
            min_size=world,
            max_size=world,
        )
    )
    rank = draw(st.integers(min_value=0, max_value=world - 1))
    tile = draw(st.sampled_from([16, 128]))
    return np.array(pairs, dtype=np.int64), rank, tile


@given(case=schedule_cases())
@settings(max_examples=80, deadline=None)
def test_layer0_schedule_structural_invariants(case):
    pairs, rank, tile = case
    schedule = build_layer0_schedule(pairs, rank, tile_tm=tile)
    # Row conservation.
    assert schedule.total_rows == pairs.sum()
    assert schedule.num_local + schedule.num_remote == pairs.sum()
    # Every block has 1..tile rows.
    if schedule.num_rowblocks:
        assert schedule.rowblock_rows.min() >= 1
        assert schedule.rowblock_rows.max() <= tile
    # Fetch indices bounded by the remote count.
    if schedule.num_remote:
        assert schedule.rowblock_last_fetch.max() == schedule.num_remote - 1
    else:
        assert (schedule.rowblock_last_fetch == -1).all()
    # Per-expert row totals match.
    for e in range(pairs.shape[1]):
        mask = schedule.rowblock_expert == e
        assert schedule.rowblock_rows[mask].sum() == pairs[:, e].sum()


@given(
    rows=st.lists(st.integers(min_value=0, max_value=2000), min_size=1, max_size=16),
    cols=st.integers(min_value=1, max_value=8192),
    tile=st.sampled_from([64, 128]),
)
@settings(max_examples=80, deadline=None)
def test_layer1_schedules_same_work_different_order(rows, cols, tile):
    """Column-major and expert-major orders are permutations of the same
    tile set: equal totals, equal final ordinal, but column-major's first
    column never completes later."""
    rows = np.array(rows)
    cm = build_layer1_schedule(rows, cols, tile_tn=tile, policy="column_major")
    em = build_layer1_schedule(rows, cols, tile_tn=tile, policy="expert_major")
    assert cm.total_tiles == em.total_tiles
    o_cm, o_em = cm.column_completion_ordinals(), em.column_completion_ordinals()
    if cm.total_tiles:
        assert o_cm[-1] == o_em[-1] == cm.total_tiles
        assert o_cm[0] <= o_em[0]
        assert (o_cm >= 1).all() and (o_em >= 1).all()
