"""Unit tests for workload construction and geometry."""

import numpy as np
import pytest

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B, QWEN2_MOE
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload


class TestMakeWorkload:
    def test_basic_construction(self):
        w = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), total_tokens=4096
        )
        assert w.total_tokens == 4096
        assert w.tokens_per_rank == 512
        assert w.plan.num_tokens == 4096

    def test_tokens_must_divide_world(self):
        with pytest.raises(ValueError):
            make_workload(
                MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), total_tokens=4097
            )

    def test_strategy_world_must_match_cluster(self):
        with pytest.raises(ValueError):
            make_workload(
                MIXTRAL_8X7B, h800_node(4), ParallelStrategy(1, 8), total_tokens=4096
            )

    def test_model_divisibility_checked(self):
        # Mixtral has 8 experts; ep=16 cannot host them.
        with pytest.raises(ValueError):
            make_workload(
                MIXTRAL_8X7B,
                h800_node(16),
                ParallelStrategy(1, 16),
                total_tokens=4096,
            )

    def test_imbalance_increases_load_std(self):
        balanced = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192, seed=1
        )
        skewed = make_workload(
            MIXTRAL_8X7B,
            h800_node(),
            ParallelStrategy(1, 8),
            8192,
            imbalance_std=0.05,
            seed=1,
        )
        assert skewed.plan.load_std() > balanced.plan.load_std()

    def test_deterministic_given_seed(self):
        w1 = make_workload(MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 4096, seed=3)
        w2 = make_workload(MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 4096, seed=3)
        np.testing.assert_array_equal(w1.plan.experts, w2.plan.experts)


class TestGeometry:
    def make(self, tp=1, ep=8, tokens=8192, std=0.0, config=MIXTRAL_8X7B):
        return make_workload(
            config,
            h800_node(),
            ParallelStrategy(tp, ep),
            tokens,
            imbalance_std=std,
        ).geometry

    def test_rows_conserved_pure_ep(self):
        g = self.make()
        assert g.rows_per_rank.sum() == 8192 * MIXTRAL_8X7B.topk

    def test_rows_fanout_under_tp(self):
        g = self.make(tp=2, ep=4)
        # Each pair lands on both TP ranks of its group.
        assert g.rows_per_rank.sum() == 8192 * MIXTRAL_8X7B.topk * 2

    def test_bottleneck_rank_has_max_rows(self):
        g = self.make(std=0.05)
        assert g.rows_per_rank[g.bottleneck_rank] == g.rows_per_rank.max()

    def test_dispatch_matrix_symmetric_totals(self):
        g = self.make()
        matrix = g.dispatch_bytes_matrix
        assert matrix.sum() == g.rows_per_rank.sum() * MIXTRAL_8X7B.token_bytes

    def test_split_intra_cross_partitions(self):
        g = self.make(tp=2, ep=4)
        matrix = g.dispatch_bytes_matrix
        intra, cross = g.split_intra_cross(matrix)
        np.testing.assert_array_equal(intra + cross, matrix)
        # Pure-EP has no intra-group fan-out beyond the rank itself.
        strategy = g.workload.strategy
        for src in range(strategy.world_size):
            group = set(strategy.tp_group_of(src))
            for dst in range(strategy.world_size):
                if dst not in group:
                    assert intra[src, dst] == 0

    def test_unique_tokens_bounded(self):
        g = self.make()
        unique = g.unique_tokens_per_rank
        assert (unique <= g.rows_per_rank).all()
        assert (unique >= 0).all()

    def test_unique_tokens_pure_tp_counts_every_token(self):
        g = self.make(tp=8, ep=1)
        # Every token has all its experts in the single EP group.
        assert (g.unique_tokens_per_rank == 8192).all()

    def test_combine_row_split_partitions_unique(self):
        g = self.make(tp=2, ep=4)
        for rank in range(8):
            local, bulk, fine = g.combine_row_split(rank)
            assert local + bulk + fine == g.unique_tokens_per_rank[rank]

    def test_combine_split_pure_ep_has_no_bulk(self):
        g = self.make(tp=1, ep=8)
        for rank in range(8):
            _, bulk, _ = g.combine_row_split(rank)
            assert bulk == 0

    def test_combine_split_pure_tp_has_no_fine(self):
        g = self.make(tp=8, ep=1)
        for rank in range(8):
            _, _, fine = g.combine_row_split(rank)
            assert fine == 0

    def test_qwen2_many_experts(self):
        g = self.make(config=QWEN2_MOE)
        assert g.rows_per_rank.sum() == 8192 * QWEN2_MOE.topk
        assert len(g.rank_workload(0).local_experts) == 8
