"""Unit tests for MoE model configurations (paper Table 2)."""

import pytest

from repro.moe import MIXTRAL_8X7B, PAPER_MODELS, PHI35_MOE, QWEN2_MOE, MoEConfig


class TestPaperModels:
    """The three models must match Table 2 exactly."""

    def test_mixtral(self):
        assert MIXTRAL_8X7B.num_layers == 32
        assert MIXTRAL_8X7B.num_experts == 8
        assert MIXTRAL_8X7B.topk == 2
        assert MIXTRAL_8X7B.hidden_size == 4096
        assert MIXTRAL_8X7B.ffn_size == 14336

    def test_qwen2(self):
        assert QWEN2_MOE.num_layers == 24
        assert QWEN2_MOE.num_experts == 64
        assert QWEN2_MOE.topk == 4
        assert QWEN2_MOE.hidden_size == 2048
        assert QWEN2_MOE.ffn_size == 1408

    def test_phi35(self):
        assert PHI35_MOE.num_layers == 32
        assert PHI35_MOE.num_experts == 16
        assert PHI35_MOE.topk == 2
        assert PHI35_MOE.hidden_size == 4096
        assert PHI35_MOE.ffn_size == 6400

    def test_all_models_listed(self):
        assert len(PAPER_MODELS) == 3

    def test_all_bf16(self):
        assert all(m.dtype_bytes == 2 for m in PAPER_MODELS)


class TestMoEConfig:
    def test_token_bytes(self):
        assert MIXTRAL_8X7B.token_bytes == 4096 * 2

    def test_expert_flops_per_token(self):
        config = MoEConfig("t", 1, 4, 2, hidden_size=8, ffn_size=16)
        # Two GEMM layers: 2*N*K each.
        assert config.expert_flops_per_token == 2 * 8 * 16 * 2

    def test_topk_bounds(self):
        with pytest.raises(ValueError):
            MoEConfig("t", 1, 4, 5, 8, 16)
        with pytest.raises(ValueError):
            MoEConfig("t", 1, 4, 0, 8, 16)

    def test_with_experts(self):
        variant = MIXTRAL_8X7B.with_experts(32, topk=4)
        assert variant.num_experts == 32
        assert variant.topk == 4
        assert variant.hidden_size == MIXTRAL_8X7B.hidden_size

    def test_with_experts_keeps_topk(self):
        assert MIXTRAL_8X7B.with_experts(16).topk == MIXTRAL_8X7B.topk

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            MoEConfig("t", 1, 4, 2, 8, 16, dtype_bytes=3)


class TestNvshmemBufferTable3:
    """Paper Table 3: buffer = dtype * M * N, shared across layers."""

    @pytest.mark.parametrize(
        "config,tokens,expected_mb",
        [
            (MIXTRAL_8X7B, 4096, 32),
            (MIXTRAL_8X7B, 8192, 64),
            (QWEN2_MOE, 4096, 16),
            (QWEN2_MOE, 8192, 32),
            (PHI35_MOE, 4096, 32),
            (PHI35_MOE, 8192, 64),
        ],
    )
    def test_table3_values(self, config, tokens, expected_mb):
        assert config.nvshmem_buffer_bytes(tokens) == expected_mb * 1024 * 1024

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            MIXTRAL_8X7B.nvshmem_buffer_bytes(-1)
