"""Serving API tests: grids, reports, exports, CLI, and the paper-level
claim that COMET sustains higher SLO goodput than every baseline."""

import json

import pytest

from repro import ExperimentSpec, ServeScenario, ServeSpec, TraceSpec
from repro.api.results import rows_to_csv
from repro.cli import main
from repro.hw.presets import h800_node
from repro.moe.config import MIXTRAL_8X7B
from repro.parallel.strategy import ParallelStrategy
from repro.serve.metrics import RequestRecord, ServeReport

SMALL_TRACE = TraceSpec(kind="poisson", rps=20, duration_s=3, seed=0)


def small_spec(systems=("comet", "tutel"), **kwargs):
    return ServeSpec.grid(
        models="mixtral", clusters="h800", traces=SMALL_TRACE,
        systems=systems, **kwargs,
    )


class TestServeSpecGrid:
    def test_grid_expands_cartesian_axes(self):
        spec = ServeSpec.grid(
            traces=(SMALL_TRACE, TraceSpec(kind="bursty", rps=10, duration_s=3)),
            policies=("fcfs", "spf"),
        )
        assert len(spec.scenarios) == 4

    def test_default_strategy_is_pure_ep(self):
        spec = small_spec()
        (scenario,) = {s for s in spec.scenarios}
        assert scenario.strategy == ParallelStrategy(tp_size=1, ep_size=8)

    def test_megatron_alias_resolves(self):
        spec = small_spec(systems=("comet", "megatron"))
        assert spec.systems == ("comet", "megatron-cutlass")

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ServeScenario(
                config=MIXTRAL_8X7B,
                cluster=h800_node(),
                strategy=ParallelStrategy(tp_size=1, ep_size=8),
                policy="lifo",
            )

    def test_unsupported_system_recorded_as_skip(self):
        spec = ServeSpec.grid(
            strategies=(2, 4),  # TP=2: FasterMoE cannot run this
            traces=SMALL_TRACE,
            systems=("fastermoe", "comet"),
        )
        results = spec.run()
        assert [r.system for r in results.reports] == ["Comet"]
        assert len(results.skips) == 1
        assert results.skips[0].system == "FasterMoE"

    def test_trace_shared_across_systems(self):
        results = small_spec().run()
        comet = results.get("comet")
        tutel = results.get("tutel")
        assert comet is not None and tutel is not None
        # Identical request streams: same arrivals, prompts, outputs.
        assert [
            (r.rid, r.arrival_ms, r.prompt_tokens, r.output_tokens)
            for r in comet.records
        ] == [
            (r.rid, r.arrival_ms, r.prompt_tokens, r.output_tokens)
            for r in tutel.records
        ]


class TestServeDeterminism:
    def test_bit_identical_reports_across_runs(self):
        first = small_spec().run()
        second = small_spec().run()
        assert first.reports == second.reports
        assert first.to_json() == second.to_json()


class TestServeReportMetrics:
    def make_report(self, records, slo_ttft=100.0, slo_tpot=10.0, horizon=1000.0):
        return ServeReport(
            system="Test",
            scenario_label="test",
            records=tuple(records),
            timeline=(),
            slo_ttft_ms=slo_ttft,
            slo_tpot_ms=slo_tpot,
            horizon_ms=horizon,
            max_batch_tokens=1024,
        )

    def record(self, rid, arrival, first, done, output=5):
        return RequestRecord(
            rid=rid, arrival_ms=arrival, first_token_ms=first,
            completion_ms=done, prompt_tokens=10, output_tokens=output,
        )

    def test_latency_accessors(self):
        rec = self.record(0, arrival=10.0, first=40.0, done=80.0, output=5)
        assert rec.ttft_ms == pytest.approx(30.0)
        assert rec.tpot_ms == pytest.approx(10.0)
        assert rec.e2e_ms == pytest.approx(70.0)

    def test_single_token_output_has_zero_tpot(self):
        rec = self.record(0, arrival=0.0, first=5.0, done=5.0, output=1)
        assert rec.tpot_ms == 0.0

    def test_goodput_counts_only_slo_attaining_requests(self):
        good = self.record(0, arrival=0.0, first=50.0, done=90.0)  # both SLOs ok
        late = self.record(1, arrival=0.0, first=500.0, done=540.0)  # TTFT miss
        slow = self.record(2, arrival=0.0, first=10.0, done=100.0, output=2)
        # slow: tpot = 90 > 10 -> TPOT miss
        report = self.make_report([good, late, slow])
        assert report.good_requests == 1
        assert report.slo_attainment == pytest.approx(1 / 3)
        assert report.goodput_rps == pytest.approx(1.0)  # 1 good / 1 s horizon

    def test_percentiles_on_empty_report_are_nan(self):
        report = self.make_report([])
        assert all(v != v for v in report.ttft_percentiles().values())
        assert report.goodput_rps == 0.0


class TestExports:
    def test_serve_to_rows_and_csv(self, tmp_path):
        results = small_spec().run()
        headers, rows = results.to_rows()
        assert headers[0] == "scenario" and "goodput_rps" in headers
        assert len(rows) == 2
        path = tmp_path / "serve.csv"
        text = results.to_csv(str(path))
        assert path.read_text() == text
        assert text.splitlines()[0].startswith("scenario,system,")
        assert len(text.splitlines()) == 3

    def test_serve_to_json_round_trips(self):
        results = small_spec().run()
        payload = json.loads(results.to_json())
        assert {r["system"] for r in payload["reports"]} == {"Comet", "Tutel"}
        for report in payload["reports"]:
            assert report["goodput_rps"] >= 0

    def test_serve_to_json_is_strict_json_when_reports_are_empty(self):
        # NaN percentiles from empty reports must serialize as null, not
        # the bare NaN token strict JSON parsers reject.
        empty = ServeSpec.grid(
            traces=TraceSpec(kind="replay", arrivals_ms=()),
            systems="comet",
        )
        text = empty.run().to_json()
        assert "NaN" not in text
        payload = json.loads(text)
        assert payload["reports"][0]["ttft_p50_ms"] is None

    def test_resultset_to_csv(self, tmp_path):
        # Satellite: the offline ResultSet exports CSV with the same
        # conventions as its to_rows/to_json.
        results = ExperimentSpec.grid(
            tokens=2048, strategies=(1, 8), systems=("comet", "tutel")
        ).run()
        path = tmp_path / "sweep.csv"
        text = results.to_csv(str(path))
        lines = path.read_text().splitlines()
        assert lines[0] == "model,cluster,strategy,M,imbalance,seed,system,ms"
        assert len(lines) == 3
        assert text == path.read_text()

    def test_rows_to_csv_quotes_commas(self):
        text = rows_to_csv(["a", "b"], [["x,y", 1]])
        assert text.splitlines()[1] == '"x,y",1'


class TestServeCli:
    def test_serve_command_smoke(self, tmp_path, capsys):
        json_path = tmp_path / "serve.json"
        csv_path = tmp_path / "serve.csv"
        code = main([
            "serve", "--trace", "poisson", "--rps", "20", "--duration", "3",
            "--systems", "comet,tutel,megatron",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "Comet" in out and "Megatron-Cutlass" in out
        payload = json.loads(json_path.read_text())
        assert len(payload["reports"]) == 3
        assert csv_path.exists()

    def test_serve_rejects_unknown_system(self, capsys):
        assert main(["serve", "--systems", "nope"]) == 2
        assert "valid system" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_tp(self, capsys):
        assert main(["serve", "--tp", "0"]) == 2
        assert "tp must be positive" in capsys.readouterr().err

    def test_layer_report_flag(self, capsys):
        code = main(["layer", "--tokens", "2048", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Overlap report" in out
        assert "hidden %" in out


class TestGoodputOrdering:
    def test_comet_dominates_baselines_at_saturating_load(self):
        # The acceptance-criteria configuration, scaled to test time: at a
        # load past the baselines' saturation point on the Mixtral 8x7B
        # preset, COMET sustains strictly higher goodput than every
        # baseline at the same SLO.
        spec = ServeSpec.grid(
            models="mixtral",
            clusters="h800",
            traces=TraceSpec(kind="poisson", rps=160, duration_s=10, seed=0),
            slo_ttft_ms=500.0,
            systems=(
                "megatron-cutlass", "megatron-te", "fastermoe", "tutel", "comet"
            ),
        )
        goodput = spec.run().goodput_by_system()
        comet = goodput.pop("Comet")
        assert goodput, "no baselines ran"
        for system, value in goodput.items():
            assert comet > value, (system, value, comet)

    def test_all_registered_builtin_systems_are_servable(self):
        results = ServeSpec.grid(
            traces=TraceSpec(rps=10, duration_s=2, seed=0)
        ).run()
        served = {report.system for report in results.reports}
        assert served == {
            "Megatron-TE", "Megatron-Cutlass", "FasterMoE", "Tutel", "Comet"
        }
        assert not results.skips
