"""Chrome-trace schema validation and the timeline builders' layout.

Satellite coverage for the observability PR: per-phase required keys,
tid/pid consistency, flow pairing, JSON round-trips, and the
collision-free ``req<slot>`` sub-lane layout of merged fleet traces.
"""

import json

import pytest

from repro.obs import validate_chrome_trace
from repro.obs.timeline import FlowIdAllocator, _SlotAllocator
from repro.sim import Tracer


def _named(pid=0, tid=0):
    return [
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
         "args": {"name": "lane"}},
    ]


def _x(pid=0, tid=0, ts=0.0, dur=1.0, name="op"):
    return {"name": name, "cat": "comp", "ph": "X", "pid": pid, "tid": tid,
            "ts": ts, "dur": dur, "args": {}}


class TestValidator:
    def test_counts_by_phase(self):
        doc = {"traceEvents": _named() + [_x(), _x(ts=2.0)]}
        assert validate_chrome_trace(doc) == {"M": 1, "X": 2}

    def test_accepts_json_text(self):
        doc = json.dumps({"traceEvents": _named() + [_x()]})
        assert validate_chrome_trace(doc)["X"] == 1

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"name": "b", "ph": "B", "pid": 0, "tid": 0,
                                "ts": 0, "args": {}}]}
        with pytest.raises(ValueError, match="unsupported phase"):
            validate_chrome_trace(doc)

    def test_rejects_missing_required_key(self):
        bad = _x()
        del bad["dur"]
        with pytest.raises(ValueError, match="missing key 'dur'"):
            validate_chrome_trace({"traceEvents": _named() + [bad]})

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError, match="negative dur"):
            validate_chrome_trace(
                {"traceEvents": _named() + [_x(dur=-1.0)]}
            )

    def test_rejects_non_integer_pid(self):
        bad = _x()
        bad["pid"] = "zero"
        with pytest.raises(ValueError, match="integers"):
            validate_chrome_trace({"traceEvents": _named() + [bad]})

    def test_rejects_unnamed_thread(self):
        with pytest.raises(ValueError, match="unnamed thread"):
            validate_chrome_trace({"traceEvents": [_x(tid=7)]})

    def test_rejects_conflicting_process_names(self):
        doc = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "a"}},
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "b"}},
        ]}
        with pytest.raises(ValueError, match="named twice"):
            validate_chrome_trace(doc)

    def test_rejects_non_numeric_counter(self):
        doc = {"traceEvents": [
            {"name": "q", "ph": "C", "pid": 0, "ts": 0,
             "args": {"depth": "three"}},
        ]}
        with pytest.raises(ValueError, match="non-numeric"):
            validate_chrome_trace(doc)

    def test_rejects_bad_instant_scope(self):
        doc = {"traceEvents": _named() + [
            {"name": "i", "cat": "c", "ph": "i", "pid": 0, "tid": 0,
             "ts": 0, "s": "z", "args": {}},
        ]}
        with pytest.raises(ValueError, match="invalid scope"):
            validate_chrome_trace(doc)

    def test_rejects_unpaired_flow(self):
        doc = {"traceEvents": _named() + [
            {"name": "f", "cat": "c", "ph": "s", "pid": 0, "tid": 0,
             "ts": 0, "id": 1, "args": {}},
        ]}
        with pytest.raises(ValueError, match="unpaired"):
            validate_chrome_trace(doc)

    def test_rejects_flow_finishing_before_start(self):
        doc = {"traceEvents": _named() + [
            {"name": "f", "cat": "c", "ph": "s", "pid": 0, "tid": 0,
             "ts": 5, "id": 1, "args": {}},
            {"name": "f", "cat": "c", "ph": "f", "pid": 0, "tid": 0,
             "ts": 1, "id": 1, "bp": "e", "args": {}},
        ]}
        with pytest.raises(ValueError, match="finishes"):
            validate_chrome_trace(doc)

    def test_rejects_flow_finish_without_binding_point(self):
        doc = {"traceEvents": _named() + [
            {"name": "f", "cat": "c", "ph": "s", "pid": 0, "tid": 0,
             "ts": 0, "id": 1, "args": {}},
            {"name": "f", "cat": "c", "ph": "f", "pid": 0, "tid": 0,
             "ts": 1, "id": 1, "bp": "x", "args": {}},
        ]}
        with pytest.raises(ValueError, match="bp='e'"):
            validate_chrome_trace(doc)

    def test_overlap_check_is_opt_in(self):
        doc = {"traceEvents": _named() + [_x(ts=0, dur=10), _x(ts=5, dur=10)]}
        validate_chrome_trace(doc)  # fine by default
        with pytest.raises(ValueError, match="overlap"):
            validate_chrome_trace(doc, check_overlap=True)

    def test_zero_duration_slices_at_same_ts_pass_overlap_check(self):
        doc = {"traceEvents": _named() + [_x(ts=3, dur=0), _x(ts=3, dur=0)]}
        validate_chrome_trace(doc, check_overlap=True)


class TestRoundTrip:
    def test_tracer_export_survives_json_round_trip(self):
        tracer = Tracer()
        tracer.record("op", "comp", "sm", 0, 5, process="rank0", layer=3)
        tracer.counter("queue", 1.0, process="rank0", depth=2)
        tracer.instant("mark", 2.0, process="rank0", lane="sm")
        tracer.flow_begin("f", 0.0, 1, process="rank0", lane="sm")
        tracer.flow_end("f", 3.0, 1, process="rank0", lane="sm")
        text = json.dumps(tracer.to_chrome_trace())
        counts = validate_chrome_trace(text)
        assert counts == {"M": 3, "X": 1, "C": 1, "i": 1, "s": 1, "f": 1}
        assert json.loads(text) == tracer.to_chrome_trace()


class TestAllocators:
    def test_flow_ids_are_sequential_and_unique(self):
        alloc = FlowIdAllocator(start=5)
        assert [alloc.next() for _ in range(3)] == [5, 6, 7]

    def test_slot_allocator_reuses_freed_slots(self):
        alloc = _SlotAllocator()
        assert alloc.allocate(0, 10) == 0
        assert alloc.allocate(1, 5) == 1  # slot 0 busy
        assert alloc.allocate(6, 8) == 1  # slot 1 freed at 5
        assert alloc.allocate(7, 9) == 2  # both busy

    def test_slot_allocator_prefers_lowest_free_slot(self):
        alloc = _SlotAllocator()
        alloc.allocate(0, 2)   # slot 0
        alloc.allocate(0, 10)  # slot 1
        assert alloc.allocate(3, 5) == 0


class TestFleetLaneCollisions:
    def test_merged_fleet_trace_has_no_lane_collisions(self):
        from repro.fleet import FailureEvent, FleetSpec
        from repro.obs import trace_fleet_report
        from repro.serve import TraceSpec

        spec = FleetSpec.grid(
            replicas=2,
            traces=TraceSpec(kind="bursty", rps=60, duration_s=1.0, seed=3),
            failures=(FailureEvent(replica=0, fail_ms=200.0, recover_ms=600.0),),
            systems="comet",
        )
        report = spec.run().reports[0]
        tracer = trace_fleet_report(report)
        counts = validate_chrome_trace(
            tracer.to_chrome_trace(), check_overlap=True
        )
        assert counts["X"] > 0 and counts["s"] == counts["f"]

    def test_serve_trace_sub_lanes_never_overlap(self):
        from repro.obs import trace_serve_report
        from repro.serve import ServeSpec, TraceSpec

        spec = ServeSpec.grid(
            traces=TraceSpec(kind="poisson", rps=80, duration_s=1.0, seed=1),
            systems="comet",
        )
        report = spec.run().reports[0]
        tracer = trace_serve_report(report)
        counts = validate_chrome_trace(
            tracer.to_chrome_trace(), check_overlap=True
        )
        # one flow arrow per served request, fully paired
        assert counts["s"] == counts["f"] == len(report.records)
