"""Tests for the ASCII timing visualiser."""

import pytest

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import compare_systems, make_workload
from repro.runtime.visualize import render_breakdown_bars, render_overlap_lanes
from repro.systems import Comet, MegatronCutlass


@pytest.fixture(scope="module")
def timings():
    workload = make_workload(
        MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 4096
    )
    return dict(compare_systems([MegatronCutlass(), Comet()], workload))


class TestBreakdownBars:
    def test_contains_all_systems(self, timings):
        text = render_breakdown_bars(timings)
        assert "Megatron-Cutlass" in text
        assert "Comet" in text

    def test_slowest_first(self, timings):
        text = render_breakdown_bars(timings)
        lines = text.splitlines()
        assert "Megatron-Cutlass" in lines[0]

    def test_bar_length_proportional(self, timings):
        """The slowest system's bar fills the width; faster ones are shorter."""
        width = 50
        text = render_breakdown_bars(timings, width=width)
        lines = [line for line in text.splitlines() if "|" in line]
        fills = [len(line.split("|")[1].rstrip()) for line in lines]
        assert fills[0] >= fills[-1]
        assert fills[0] == pytest.approx(width, abs=4)  # rounding slack

    def test_legend_present(self, timings):
        assert "g=gating" in render_breakdown_bars(timings)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_breakdown_bars({})

    def test_small_width_rejected(self, timings):
        with pytest.raises(ValueError):
            render_breakdown_bars(timings, width=4)


class TestOverlapLanes:
    def test_structure(self, timings):
        text = render_overlap_lanes(timings["Comet"])
        assert "compute |" in text
        assert "comm    |" in text
        assert "% of communication hidden" in text

    def test_megatron_shows_no_hidden(self, timings):
        text = render_overlap_lanes(timings["Megatron-Cutlass"])
        comm_line = [line for line in text.splitlines() if line.startswith("  comm")][0]
        # No overlap: no dimmed (hidden) cells before the exposed run.
        assert "." not in comm_line.split("|")[1]

    def test_comet_shows_mostly_hidden(self, timings):
        text = render_overlap_lanes(timings["Comet"])
        comm_line = [line for line in text.splitlines() if line.startswith("  comm")][0]
        cells = comm_line.split("|")[1]
        assert cells.count(".") > cells.count("!")

    def test_small_width_rejected(self, timings):
        with pytest.raises(ValueError):
            render_overlap_lanes(timings["Comet"], width=3)
