"""Unit tests for adaptive thread-block assignment (paper §3.2.2)."""

import pytest

from repro.kernels.assignment import (
    AssignmentProfile,
    KernelVariant,
    ProfileKey,
    default_variants,
    profile_division_points,
    select_division_point,
)


class TestVariants:
    def test_default_variants_range(self):
        variants = default_variants(132)
        ncs = [v.nc for v in variants]
        assert min(ncs) == 2
        assert max(ncs) <= 132 * 0.6 + 4
        assert len(ncs) > 5

    def test_negative_nc_rejected(self):
        with pytest.raises(ValueError):
            KernelVariant(-1)

    def test_tiny_gpu_rejected(self):
        with pytest.raises(ValueError):
            default_variants(2)


class TestProfileKey:
    def test_bucket_rounds_up_to_power_of_two(self):
        assert ProfileKey.bucket_tokens(4096) == 4096
        assert ProfileKey.bucket_tokens(5000) == 8192
        assert ProfileKey.bucket_tokens(1) == 1
        assert ProfileKey.bucket_tokens(0) == 1

    def test_make_validates_layer(self):
        with pytest.raises(ValueError):
            ProfileKey.make(2, 1, 8, 4096)

    def test_keys_hashable_and_distinct(self):
        k1 = ProfileKey.make(0, 1, 8, 4096)
        k2 = ProfileKey.make(1, 1, 8, 4096)
        assert k1 != k2
        assert len({k1, k2}) == 2


class TestProfiling:
    @staticmethod
    def quadratic(nc: int) -> float:
        """Synthetic U-curve with minimum at nc = 26."""
        return (nc - 26) ** 2 + 100.0

    def test_finds_minimum(self):
        sweep = profile_division_points(self.quadratic, default_variants(132))
        assert abs(sweep.best_nc - 26) <= 2  # quantised library

    def test_curve_sorted(self):
        sweep = profile_division_points(self.quadratic, default_variants(132))
        ncs = [nc for nc, _ in sweep.curve()]
        assert ncs == sorted(ncs)

    def test_invalid_variants_skipped(self):
        def sim(nc: int) -> float:
            if nc > 10:
                raise ValueError("too many blocks")
            return float(100 - nc)

        sweep = profile_division_points(sim, default_variants(132))
        assert sweep.best_nc <= 10

    def test_all_invalid_raises(self):
        def sim(nc: int) -> float:
            raise ValueError("never works")

        with pytest.raises(ValueError):
            profile_division_points(sim, default_variants(132))

    def test_best_duration(self):
        sweep = profile_division_points(self.quadratic, default_variants(132))
        assert sweep.best_duration_us == min(sweep.durations_us.values())


class TestSelection:
    def make_profile(self):
        profile = AssignmentProfile()
        sweep_small = profile_division_points(
            lambda nc: (nc - 18) ** 2 + 1, default_variants(132)
        )
        sweep_large = profile_division_points(
            lambda nc: (nc - 26) ** 2 + 1, default_variants(132)
        )
        profile.record(ProfileKey.make(1, 8, 1, 4096), sweep_small)
        profile.record(ProfileKey.make(1, 8, 1, 16384), sweep_large)
        return profile

    def test_exact_hit(self):
        profile = self.make_profile()
        nc = select_division_point(profile, ProfileKey.make(1, 8, 1, 4096))
        assert abs(nc - 18) <= 2

    def test_optimal_shifts_with_tokens(self):
        """The paper's headline adaptivity: optimal nc moves with M."""
        profile = self.make_profile()
        nc_small = select_division_point(profile, ProfileKey.make(1, 8, 1, 4096))
        nc_large = select_division_point(profile, ProfileKey.make(1, 8, 1, 16384))
        assert nc_large > nc_small

    def test_nearest_bucket_fallback(self):
        profile = self.make_profile()
        nc = select_division_point(profile, ProfileKey.make(1, 8, 1, 6000))
        # 6000 buckets to 8192; nearest profiled bucket is 4096.
        assert abs(nc - 18) <= 2

    def test_cold_start_fallback(self):
        profile = self.make_profile()
        nc = select_division_point(
            profile, ProfileKey.make(0, 4, 2, 4096), fallback_nc=13
        )
        assert nc == 13

    def test_contains(self):
        profile = self.make_profile()
        assert ProfileKey.make(1, 8, 1, 4096) in profile
        assert ProfileKey.make(0, 8, 1, 4096) not in profile
