"""Unit tests for the end-to-end model runner."""

import pytest

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B, PAPER_MODELS
from repro.parallel import ParallelStrategy
from repro.runtime import overlap_report, run_model
from repro.runtime.model_runner import attention_time_us
from repro.systems import Comet, MegatronCutlass, Tutel


class TestAttentionModel:
    def test_positive(self):
        assert attention_time_us(MIXTRAL_8X7B, h800_node(), 1, 4096) > 0

    def test_scales_with_tokens(self):
        a = attention_time_us(MIXTRAL_8X7B, h800_node(), 1, 4096)
        b = attention_time_us(MIXTRAL_8X7B, h800_node(), 1, 8192)
        assert b > a

    def test_tp_reduces_compute_adds_comm(self):
        """TP=8 should still be faster than TP=1 for large attention."""
        t1 = attention_time_us(MIXTRAL_8X7B, h800_node(), 1, 8192)
        t8 = attention_time_us(MIXTRAL_8X7B, h800_node(), 8, 8192)
        assert t8 < t1

    def test_invalid(self):
        with pytest.raises(ValueError):
            attention_time_us(MIXTRAL_8X7B, h800_node(), 1, 0)
        with pytest.raises(ValueError):
            attention_time_us(MIXTRAL_8X7B, h800_node(), 0, 128)


class TestRunModel:
    def test_layers_multiply(self):
        timing = run_model(
            MegatronCutlass(), MIXTRAL_8X7B, h800_node(),
            ParallelStrategy(1, 8), total_tokens=1024,
        )
        assert timing.num_layers == 32
        assert timing.total_us == pytest.approx(32 * timing.layer_us)

    def test_attention_identical_across_systems(self):
        """Figure 9's hatched region: the non-MoE part must not differ."""
        kwargs = dict(
            config=MIXTRAL_8X7B, cluster=h800_node(),
            strategy=ParallelStrategy(1, 8), total_tokens=1024,
        )
        a = run_model(MegatronCutlass(), **kwargs)
        b = run_model(Comet(), **kwargs)
        assert a.attention_us == b.attention_us

    def test_comet_wins_end_to_end(self):
        kwargs = dict(
            config=MIXTRAL_8X7B, cluster=h800_node(),
            strategy=ParallelStrategy(1, 8), total_tokens=2048,
        )
        assert (
            run_model(Comet(), **kwargs).total_us
            < run_model(MegatronCutlass(), **kwargs).total_us
        )

    def test_moe_tokens_scale_with_dp(self):
        """MoE layer sees tokens from every DP replica: M * W / TP."""
        strategy = ParallelStrategy(tp_size=2, ep_size=4)
        timing = run_model(
            MegatronCutlass(), MIXTRAL_8X7B, h800_node(), strategy,
            total_tokens=1024,
        )
        # dp = ep = 4 replicas of 1024 tokens each.
        assert timing.moe is not None
        # sanity: fractions well-formed
        assert 0 < timing.moe_fraction < 1

    def test_comm_fraction_fig1a_band(self):
        """Figure 1(a): communication is a large share (~tens of %) of
        Megatron MoE model execution on these models."""
        for config in PAPER_MODELS:
            ep = min(8, config.num_experts)
            timing = run_model(
                MegatronCutlass(), config, h800_node(),
                ParallelStrategy(1, 8), total_tokens=4096,
            )
            assert 0.15 < timing.comm_fraction < 0.85

    def test_overlap_report_ordering(self):
        from repro.runtime import compare_systems, make_workload

        workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192
        )
        timings = compare_systems([MegatronCutlass(), Comet(), Tutel()], workload)
        report = overlap_report(timings)
        totals = [r.total_us for r in report]
        assert totals == sorted(totals, reverse=True)
        assert report[-1].system == "Comet"
