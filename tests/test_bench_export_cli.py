"""Tests for result export, the table formatter, and the CLI."""

import json

import numpy as np
import pytest

from repro.bench import format_table, table3_memory
from repro.bench.export import result_to_json, rows_to_csv, save_json
from repro.cli import main


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert lines[0].endswith("bbb")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)])
        assert "1.235" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])


class TestExport:
    def test_table3_roundtrip(self, tmp_path):
        result = table3_memory()
        path = tmp_path / "table3.json"
        save_json(result, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["buffers_mb"]["Mixtral-8x7B/4096"] == 32.0

    def test_numpy_values_serialised(self):
        import dataclasses

        @dataclasses.dataclass
        class Dummy:
            array: np.ndarray
            scalar: np.int64

        text = result_to_json(Dummy(array=np.arange(3), scalar=np.int64(7)))
        loaded = json.loads(text)
        assert loaded == {"array": [0, 1, 2], "scalar": 7}

    def test_tuple_keys_flattened(self):
        text = result_to_json({("a", 1): 2.0})
        assert json.loads(text) == {"a/1": 2.0}

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(["m", "v"], [("x", 1), ("y", 2)])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "m,v"
        assert lines[1] == "x,1"

    def test_rows_to_csv_validates_width(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a"], [(1, 2)])


class TestCli:
    def test_figure_table3(self, capsys):
        assert main(["figure", "table3"]) == 0
        out = capsys.readouterr().out
        assert "NVSHMEM buffer" in out
        assert "32.000" in out

    def test_figure_json_export(self, capsys, tmp_path):
        path = tmp_path / "t3.json"
        assert main(["figure", "table3", "--json", str(path)]) == 0
        assert json.loads(path.read_text())["buffers_mb"]["Qwen2-MoE-2.7B/8192"] == 32.0

    def test_layer_command(self, capsys):
        assert main(["layer", "--tokens", "2048", "--model", "mixtral"]) == 0
        out = capsys.readouterr().out
        assert "Comet" in out
        assert "communication hidden" in out

    def test_layer_systems_selection(self, capsys):
        assert main(
            ["layer", "--tokens", "2048", "--systems", "comet,megatron-cutlass"]
        ) == 0
        out = capsys.readouterr().out
        assert "Comet" in out and "Megatron-Cutlass" in out
        assert "Tutel" not in out

    def test_layer_unknown_system_lists_names(self, capsys):
        assert main(["layer", "--tokens", "2048", "--systems", "warp-drive"]) == 2
        err = capsys.readouterr().err
        assert "warp-drive" in err and "comet" in err and "tutel" in err

    def test_layer_annotates_skipped_systems(self, capsys):
        assert main(["layer", "--tokens", "2048", "--tp", "2", "--ep", "4"]) == 0
        out = capsys.readouterr().out
        assert "skipped: FasterMoE does not support TP2xEP4" in out

    def test_model_command(self, capsys):
        assert main(
            ["model", "--tokens", "2048", "--systems", "comet,megatron-cutlass"]
        ) == 0
        out = capsys.readouterr().out
        assert "Whole-model schedule graph makespans" in out
        assert "per_layer ms" in out and "cross_layer ms" in out
        assert "shortcut ms" in out and "best speedup" in out

    def test_model_report_prints_critical_path(self, capsys):
        assert main(
            [
                "model", "--tokens", "2048", "--systems", "comet",
                "--overlap-policy", "per_layer", "cross_layer", "--report",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Critical path" in out
        assert "L00.attention[compute0]" in out
        assert "overlap saves" in out

    def test_model_training_mode(self, capsys):
        assert main(
            [
                "model", "--tokens", "2048", "--systems", "comet",
                "--training", "--overlap-policy", "per_layer", "cross_layer",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "training step" in out

    def test_model_annotates_skipped_systems(self, capsys):
        assert main(
            ["model", "--tokens", "2048", "--tp", "2", "--ep", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "skipped: FasterMoE does not support TP2xEP4" in out

    def test_sweep_overlap_policy_axis(self, capsys):
        assert main(
            [
                "sweep", "--tokens", "2048", "--tp", "1", "--ep", "8",
                "--systems", "comet",
                "--overlap-policy", "per_layer", "shortcut",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "end-to-end model ms" in out
        assert "per_layer" in out and "shortcut" in out

    def test_serve_overlap_policy_flag(self, capsys):
        assert main(
            [
                "serve", "--rps", "8", "--duration", "2", "--systems", "comet",
                "--overlap-policy", "cross_layer",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "overlap=cross_layer" in out

    def test_sweep_command(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        assert main(
            [
                "sweep", "--models", "mixtral", "--tokens", "2048",
                "--tp", "1", "--ep", "8",
                "--systems", "comet", "megatron-cutlass",
                "--json", str(path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Scenario sweep" in out and "Comet" in out
        doc = json.loads(path.read_text())
        assert {row["system"] for row in doc["rows"]} == {
            "Comet", "Megatron-Cutlass"
        }

    def test_sweep_default_strategies_cover_factorisations(self, capsys):
        assert main(
            ["sweep", "--tokens", "2048", "--systems", "comet"]
        ) == 0
        out = capsys.readouterr().out
        for strategy in ("TP1xEP8", "TP2xEP4", "TP4xEP2", "TP8xEP1"):
            assert strategy in out

    def test_sweep_invalid_grid_rejected(self, capsys):
        assert main(["sweep", "--tp", "3", "--ep", "2", "--tokens", "2048"]) == 1
        assert "no valid scenario" in capsys.readouterr().err

    def test_sweep_nc_command(self, capsys):
        assert main(["sweep-nc", "--tokens", "4096", "--tp", "1", "--ep", "8"]) == 0
        out = capsys.readouterr().out
        assert "<- optimal" in out

    def test_sweep_nc_unknown_strategy(self, capsys):
        # TP=3 never appears in the power-of-two sweep.
        assert main(["sweep-nc", "--tokens", "4096", "--tp", "3", "--ep", "2"]) == 1

    def test_trace_command(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(["trace", "--tokens", "2048", "--out", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "not-a-figure"])
