"""Property-based tests for routing plans and placement geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import (
    balanced_fractions,
    imbalanced_fractions,
    routing_from_fractions,
    token_owner_ranks,
)
from repro.parallel import ExpertPlacement, ParallelStrategy


@st.composite
def routing_cases(draw):
    ep = draw(st.sampled_from([1, 2, 4, 8]))
    tp = draw(st.sampled_from([1, 2]))
    world = ep * tp
    experts = ep * draw(st.integers(min_value=1, max_value=4))
    topk = draw(st.integers(min_value=1, max_value=min(4, experts)))
    tokens = world * draw(st.integers(min_value=1, max_value=64))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return ep, tp, experts, topk, tokens, seed


@given(case=routing_cases())
@settings(max_examples=80, deadline=None)
def test_pair_conservation(case):
    """Routed pairs are conserved: matrix totals, per-rank rows, and plan
    counts must all agree (no token lost or duplicated in accounting)."""
    ep, tp, experts, topk, tokens, seed = case
    rng = np.random.default_rng(seed)
    plan = routing_from_fractions(tokens, topk, balanced_fractions(experts), rng)
    strategy = ParallelStrategy(tp_size=tp, ep_size=ep)
    owner = token_owner_ranks(tokens, strategy.world_size)
    placement = ExpertPlacement(strategy, experts)

    matrix = placement.pair_matrix(plan, owner)
    assert matrix.sum() == plan.total_routed * tp  # TP fans out copies

    workloads = placement.all_rank_workloads(plan, owner)
    assert sum(w.total_rows for w in workloads) == plan.total_routed * tp
    for rank, w in enumerate(workloads):
        np.testing.assert_array_equal(w.recv_pairs_by_src, matrix[:, rank])
        np.testing.assert_array_equal(w.send_pairs_by_dst, matrix[rank, :])
        assert w.pairs_by_src_expert.sum() == w.total_rows


@given(case=routing_cases())
@settings(max_examples=80, deadline=None)
def test_expert_counts_match_plan(case):
    ep, tp, experts, topk, tokens, seed = case
    rng = np.random.default_rng(seed)
    plan = routing_from_fractions(tokens, topk, balanced_fractions(experts), rng)
    assert plan.expert_counts.sum() == tokens * topk
    for expert in range(experts):
        token_ids, slots = plan.tokens_for_expert(expert)
        assert token_ids.size == plan.expert_counts[expert]
        np.testing.assert_array_equal(
            plan.experts[token_ids, slots], np.full(token_ids.size, expert)
        )


@given(
    experts=st.sampled_from([4, 8, 16, 64]),
    std=st.floats(min_value=0.0, max_value=0.05),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60)
def test_imbalanced_fractions_valid_distribution(experts, std, seed):
    fractions = imbalanced_fractions(experts, std, np.random.default_rng(seed))
    assert fractions.shape == (experts,)
    assert np.all(fractions >= 0)
    assert fractions.sum() == np.testing.assert_allclose(fractions.sum(), 1.0) or True
    if std > 0 and std < np.sqrt(experts - 1) / experts * 0.8:
        np.testing.assert_allclose(fractions.std(), std, atol=2e-3)


@given(
    tokens=st.integers(min_value=0, max_value=1000),
    world=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60)
def test_token_owner_partition(tokens, world):
    """Block distribution covers every token exactly once, evenly."""
    owner = token_owner_ranks(tokens, world)
    assert owner.shape == (tokens,)
    if tokens:
        counts = np.bincount(owner, minlength=world)
        assert counts.max() - counts.min() <= 1
        assert (np.diff(owner) >= 0).all()  # contiguous blocks
