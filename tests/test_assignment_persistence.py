"""Tests for assignment-metadata persistence (paper §3.2.2's workflow)."""

import pytest

from repro.hw import h800_node
from repro.kernels.assignment import (
    AssignmentProfile,
    ProfileKey,
    default_variants,
    profile_division_points,
    select_division_point,
)
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet


class TestProfileRoundTrip:
    def make_profile(self) -> AssignmentProfile:
        profile = AssignmentProfile()
        for layer, target in ((0, 20), (1, 30)):
            sweep = profile_division_points(
                lambda nc, t=target: (nc - t) ** 2 + 5.0,
                default_variants(132),
            )
            profile.record(ProfileKey.make(layer, 1, 8, 8192), sweep)
        return profile

    def test_save_load_roundtrip(self, tmp_path):
        profile = self.make_profile()
        path = tmp_path / "metadata.json"
        profile.save(str(path))
        restored = AssignmentProfile.load(str(path))
        assert restored.entries.keys() == profile.entries.keys()
        for key in profile.entries:
            assert restored.entries[key].best_nc == profile.entries[key].best_nc
            assert (
                restored.entries[key].durations_us
                == profile.entries[key].durations_us
            )

    def test_selection_identical_after_reload(self, tmp_path):
        profile = self.make_profile()
        path = tmp_path / "metadata.json"
        profile.save(str(path))
        restored = AssignmentProfile.load(str(path))
        for layer in (0, 1):
            key = ProfileKey.make(layer, 1, 8, 8192)
            assert select_division_point(profile, key) == select_division_point(
                restored, key
            )

    def test_corrupt_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '[{"layer": 0, "tp_size": 1, "ep_size": 8, "m_bucket": 8192,'
            ' "best_nc": 99, "durations_us": {"4": 1.0}}]'
        )
        with pytest.raises(ValueError):
            AssignmentProfile.load(str(path))

    def test_comet_profiles_survive_persistence(self, tmp_path):
        """The deployment loop: profile online, persist, reload, and get
        identical runtime decisions."""
        system = Comet()
        workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192
        )
        nc_before = system.division_point(workload, layer=1)
        cache_key = next(iter(system._profiles))
        path = tmp_path / "deploy.json"
        system._profiles[cache_key].save(str(path))

        fresh = Comet()
        fresh._profiles[cache_key] = AssignmentProfile.load(str(path))
        nc_after = fresh.division_point(workload, layer=1)
        assert nc_after == nc_before
