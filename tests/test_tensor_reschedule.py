"""Unit tests for rescheduling: schedules and numeric equivalence."""

import numpy as np
import pytest

from repro.moe import (
    ExpertWeights,
    balanced_fractions,
    reference_moe_forward,
    routing_from_fractions,
    token_owner_ranks,
)
from repro.parallel import ExpertPlacement, ParallelStrategy
from repro.tensor import (
    build_layer0_schedule,
    build_layer1_schedule,
    layer0_rescheduled_forward,
    layer1_columnwise_forward,
)
from repro.tensor.reschedule import (
    POLICY_COLUMN_MAJOR,
    POLICY_EXPERT_MAJOR,
    POLICY_SORTED,
    POLICY_TOKEN_ORDER,
)


def rank_pairs(world=4, experts=8, tokens=512, topk=2, seed=0, rank=0):
    rng = np.random.default_rng(seed)
    plan = routing_from_fractions(tokens, topk, balanced_fractions(experts), rng)
    owner = token_owner_ranks(tokens, world)
    placement = ExpertPlacement(ParallelStrategy(tp_size=1, ep_size=world), experts)
    return placement.rank_workload(plan, owner, rank).pairs_by_src_expert


class TestLayer0Schedule:
    def test_rows_conserved(self):
        pairs = rank_pairs()
        schedule = build_layer0_schedule(pairs, rank=0, tile_tm=128)
        assert schedule.total_rows == pairs.sum()

    def test_local_plus_remote_partition(self):
        pairs = rank_pairs()
        schedule = build_layer0_schedule(pairs, rank=0)
        assert schedule.num_local == pairs[0].sum()
        assert schedule.num_remote == pairs.sum() - pairs[0].sum()

    def test_fetch_indices_in_range(self):
        pairs = rank_pairs()
        schedule = build_layer0_schedule(pairs, rank=0)
        assert schedule.rowblock_last_fetch.min() >= -1
        assert schedule.rowblock_last_fetch.max() == schedule.num_remote - 1

    def test_sorted_policy_has_local_first_blocks(self):
        """With sorting, experts with enough local tokens yield blocks that
        are ready immediately (last_fetch == -1)."""
        pairs = rank_pairs(world=2, experts=4, tokens=4096, topk=2)
        schedule = build_layer0_schedule(pairs, rank=0, tile_tm=128)
        assert (schedule.rowblock_last_fetch == -1).any()

    def test_sorted_dominates_token_order(self):
        """Sorting by source rank can only move block dependencies earlier:
        every block's last-fetch index under the sorted policy is <= the
        worst block's under token order, and on average strictly less."""
        pairs = rank_pairs(world=4, experts=8, tokens=2048)
        sorted_sched = build_layer0_schedule(pairs, 0, policy=POLICY_SORTED)
        shuffled = build_layer0_schedule(
            pairs, 0, policy=POLICY_TOKEN_ORDER, rng=np.random.default_rng(5)
        )
        assert (
            sorted_sched.rowblock_last_fetch.mean()
            < shuffled.rowblock_last_fetch.mean()
        )

    def test_block_sizes_bounded_by_tile(self):
        pairs = rank_pairs()
        schedule = build_layer0_schedule(pairs, rank=0, tile_tm=128)
        assert schedule.rowblock_rows.max() <= 128
        assert schedule.rowblock_rows.min() >= 1

    def test_monotone_last_fetch_within_expert(self):
        pairs = rank_pairs()
        schedule = build_layer0_schedule(pairs, rank=0)
        for expert in np.unique(schedule.rowblock_expert):
            fetches = schedule.rowblock_last_fetch[
                schedule.rowblock_expert == expert
            ]
            assert (np.diff(fetches) >= 0).all()

    def test_empty_expert_skipped(self):
        pairs = np.zeros((2, 3), dtype=np.int64)
        pairs[0, 1] = 4
        schedule = build_layer0_schedule(pairs, rank=0, tile_tm=128)
        assert schedule.num_rowblocks == 1
        assert schedule.rowblock_expert.tolist() == [1]

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            build_layer0_schedule(np.zeros((2, 2), dtype=int), rank=2)

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            build_layer0_schedule(np.zeros((2, 2), dtype=int), 0, policy="bogus")


class TestLayer1Schedule:
    def test_tile_counts(self):
        schedule = build_layer1_schedule(np.array([128, 256]), cols=512)
        assert schedule.total_row_tiles == 3
        assert schedule.col_tiles == 4
        assert schedule.total_tiles == 12

    def test_column_major_completion_ordinals(self):
        schedule = build_layer1_schedule(
            np.array([128, 128]), cols=384, policy=POLICY_COLUMN_MAJOR
        )
        # R = 2 row tiles, C = 3 columns: columns complete at 2, 4, 6.
        assert schedule.column_completion_ordinals().tolist() == [2, 4, 6]

    def test_expert_major_completion_ordinals(self):
        schedule = build_layer1_schedule(
            np.array([128, 128]), cols=384, policy=POLICY_EXPERT_MAJOR
        )
        # Last row tile emits columns at ordinals (R-1)*C + j + 1 = 4, 5, 6.
        assert schedule.column_completion_ordinals().tolist() == [4, 5, 6]

    def test_column_major_first_column_much_earlier(self):
        """The whole point of column-major order (Figure 6): the first
        column completes after 1/C of the work instead of ~all of it."""
        rows = np.array([512] * 8)
        cm = build_layer1_schedule(rows, cols=4096, policy=POLICY_COLUMN_MAJOR)
        em = build_layer1_schedule(rows, cols=4096, policy=POLICY_EXPERT_MAJOR)
        assert cm.column_completion_ordinals()[0] < em.column_completion_ordinals()[0]

    def test_both_policies_finish_together(self):
        rows = np.array([512] * 4)
        cm = build_layer1_schedule(rows, cols=1024, policy=POLICY_COLUMN_MAJOR)
        em = build_layer1_schedule(rows, cols=1024, policy=POLICY_EXPERT_MAJOR)
        assert (
            cm.column_completion_ordinals()[-1]
            == em.column_completion_ordinals()[-1]
            == cm.total_tiles
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_layer1_schedule(np.array([-1]), cols=128)
        with pytest.raises(ValueError):
            build_layer1_schedule(np.array([128]), cols=0)
        with pytest.raises(ValueError):
            build_layer1_schedule(np.array([128]), cols=128, policy="bogus")


class TestNumericEquivalence:
    """Rescheduling must be a pure reordering of the same math."""

    def setup_method(self):
        self.rng = np.random.default_rng(11)
        self.weights = ExpertWeights.init(6, hidden_size=32, ffn_size=48, rng=self.rng)
        self.tokens = 96
        self.x = self.rng.normal(size=(self.tokens, 32)).astype(np.float32)
        self.plan = routing_from_fractions(
            self.tokens, 3, balanced_fractions(6), self.rng
        )
        self.owner = token_owner_ranks(self.tokens, 4)
        self.reference = reference_moe_forward(self.x, self.plan, self.weights)

    def test_full_comet_schedule_matches_reference(self):
        acts = layer0_rescheduled_forward(
            self.x, self.plan, self.weights, self.owner, local_rank=0
        )
        out = layer1_columnwise_forward(acts, self.plan, self.weights, col_block=16)
        np.testing.assert_allclose(out, self.reference, rtol=1e-4, atol=1e-5)

    def test_equivalence_for_every_local_rank(self):
        for rank in range(4):
            acts = layer0_rescheduled_forward(
                self.x, self.plan, self.weights, self.owner, local_rank=rank
            )
            out = layer1_columnwise_forward(acts, self.plan, self.weights)
            np.testing.assert_allclose(out, self.reference, rtol=1e-4, atol=1e-5)

    def test_equivalence_any_col_block(self):
        acts = layer0_rescheduled_forward(
            self.x, self.plan, self.weights, self.owner
        )
        for col_block in (1, 7, 32, 1000):
            out = layer1_columnwise_forward(
                acts, self.plan, self.weights, col_block=col_block
            )
            np.testing.assert_allclose(out, self.reference, rtol=1e-4, atol=1e-5)

    def test_layer0_rows_sorted_by_ring_distance(self):
        acts = layer0_rescheduled_forward(
            self.x, self.plan, self.weights, self.owner, local_rank=2
        )
        world = 4
        for token_ids, _, _ in acts:
            if token_ids.size == 0:
                continue
            distance = (self.owner[token_ids] - 2) % world
            assert (np.diff(distance) >= 0).all()

    def test_invalid_col_block(self):
        acts = layer0_rescheduled_forward(
            self.x, self.plan, self.weights, self.owner
        )
        with pytest.raises(ValueError):
            layer1_columnwise_forward(acts, self.plan, self.weights, col_block=0)
