"""MetricsRegistry, snapshot_for dispatch, and RunManifest determinism."""

import json

import pytest

from repro import ExperimentSpec, obs
from repro.fleet import FleetSpec
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    capture,
    fingerprint_obj,
    snapshot_for,
)
from repro.serve import ServeSpec, TraceSpec


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("hits")
        registry.counter("hits", 4)
        assert registry.snapshot()["counters"] == {"hits": 5.0}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("depth", 3)
        registry.gauge("depth", 1)
        assert registry.snapshot()["gauges"] == {"depth": 1}

    def test_histogram_summary(self):
        registry = MetricsRegistry(enabled=True)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", value)
        summary = registry.snapshot()["histograms"]["lat"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == 2.5
        assert {"p50", "p95", "p99"} <= set(summary)

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c")
        registry.gauge("g", 1)
        registry.observe("h", 1)
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_enabled_follows_obs_flag(self):
        with obs.disabled():
            assert MetricsRegistry().enabled is False
        with obs.enabled():
            assert MetricsRegistry().enabled is True

    def test_merge(self):
        a = MetricsRegistry(enabled=True)
        b = MetricsRegistry(enabled=True)
        a.counter("c", 1)
        b.counter("c", 2)
        b.gauge("g", 9)
        b.observe("h", 1.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"] == {"c": 3.0}
        assert snap["gauges"] == {"g": 9}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry(enabled=True)
        registry.observe("h", 1.5)
        json.dumps(registry.snapshot())


class TestSnapshotFor:
    def test_experiment_snapshot(self):
        results = ExperimentSpec.grid(tokens=4096, systems="comet").run()
        snap = snapshot_for(results)
        assert snap["counters"]["experiment.rows"] == len(results.rows)
        assert any(k.startswith("cache.") for k in snap["counters"])
        assert snapshot_for(results, include_caches=False)["counters"] == {
            "experiment.rows": float(len(results.rows)),
            "experiment.skips": 0.0,
        }

    def test_serve_snapshot(self):
        results = ServeSpec.grid(
            traces=TraceSpec(rps=20, duration_s=1.0), systems="comet"
        ).run()
        snap = snapshot_for(results, include_caches=False)
        assert snap["counters"]["serve.reports"] == 1.0
        assert "serve.ttft_ms" in snap["histograms"]

    def test_fleet_snapshot(self):
        results = FleetSpec.grid(
            replicas=2,
            traces=TraceSpec(rps=20, duration_s=1.0),
            systems="comet",
        ).run()
        snap = snapshot_for(results, include_caches=False)
        assert snap["counters"]["fleet.reports"] == 1.0
        assert snap["counters"]["fleet.dispatches"] > 0
        assert "fleet.e2e_ms" in snap["histograms"]

    def test_rejects_unknown_container(self):
        with pytest.raises(TypeError):
            snapshot_for(42)


class TestFingerprint:
    def test_deterministic_across_calls(self):
        spec = ExperimentSpec.grid(tokens=4096, systems="comet")
        assert fingerprint_obj(spec) == fingerprint_obj(spec)

    def test_sensitive_to_content(self):
        a = ExperimentSpec.grid(tokens=4096, systems="comet")
        b = ExperimentSpec.grid(tokens=8192, systems="comet")
        assert fingerprint_obj(a) != fingerprint_obj(b)

    def test_dict_key_order_is_canonical(self):
        assert fingerprint_obj({"a": 1, "b": 2}) == fingerprint_obj(
            {"b": 2, "a": 1}
        )

    def test_nan_and_inf_are_fingerprintable(self):
        assert fingerprint_obj(float("nan")) == fingerprint_obj(float("nan"))
        assert fingerprint_obj(float("inf")) != fingerprint_obj(float("nan"))


class TestRunManifest:
    def test_attached_manifests_are_deterministic(self):
        first = ExperimentSpec.grid(tokens=4096, systems="comet").run()
        second = ExperimentSpec.grid(tokens=4096, systems="comet").run()
        assert first.manifest == second.manifest
        assert first.manifest.created_unix is None
        assert first.manifest.kind == "experiment"

    def test_manifest_embedded_in_exports(self):
        results = ServeSpec.grid(
            traces=TraceSpec(rps=20, duration_s=1.0, seed=11), systems="comet"
        ).run()
        payload = json.loads(results.to_json())
        assert payload["manifest"]["kind"] == "serve"
        assert payload["manifest"]["seeds"] == [11]
        assert payload["manifest"]["fingerprint"]

    def test_fleet_manifest_counts_scenarios_and_systems(self):
        spec = FleetSpec.grid(
            replicas=(1, 2),
            traces=TraceSpec(rps=20, duration_s=1.0),
            systems="comet",
        )
        results = spec.run()
        assert results.manifest.scenarios == 2
        assert results.manifest.systems == ("comet",)

    def test_stamp_returns_copy_with_wall_clock(self):
        manifest = capture("experiment", (), ("comet",))
        stamped = manifest.stamp(now=123.0)
        assert manifest.created_unix is None
        assert stamped.created_unix == 123.0
        assert stamped.fingerprint == manifest.fingerprint
        assert isinstance(stamped, RunManifest)

    def test_manifest_survives_filter(self):
        results = ExperimentSpec.grid(
            tokens=(4096, 8192), systems="comet"
        ).run()
        filtered = results.filter(tokens=4096)
        assert filtered.manifest == results.manifest

    def test_to_dict_round_trips_through_json(self):
        manifest = capture("serve", (), ("comet",)).stamp(now=1.5)
        doc = json.loads(json.dumps(manifest.to_dict()))
        assert doc["version"] and doc["created_unix"] == 1.5
