"""Unit tests for collectives and the simulated NVSHMEM heap."""

import numpy as np
import pytest

from repro.comm import (
    SymmetricHeap,
    all_gather_cost,
    all_to_all_cost,
    hierarchical_all_to_all_cost,
    reduce_scatter_cost,
)
from repro.hw import h800_node, l20_node
from repro.moe import MIXTRAL_8X7B


def uniform_matrix(world: int, nbytes: float) -> np.ndarray:
    m = np.full((world, world), nbytes)
    np.fill_diagonal(m, 0.0)
    return m


class TestAllToAll:
    def test_zero_traffic(self):
        cluster = h800_node()
        cost = all_to_all_cost(cluster, np.zeros((8, 8)))
        assert cost.wire_bytes == 0.0
        assert cost.messages == 0

    def test_time_scales_with_volume(self):
        cluster = h800_node()
        t1 = all_to_all_cost(cluster, uniform_matrix(8, 1e6)).time_us
        t2 = all_to_all_cost(cluster, uniform_matrix(8, 2e6)).time_us
        assert t2 > t1

    def test_diagonal_ignored(self):
        cluster = h800_node()
        m = uniform_matrix(8, 1e6)
        m_with_diag = m.copy()
        np.fill_diagonal(m_with_diag, 5e9)
        assert (
            all_to_all_cost(cluster, m).time_us
            == all_to_all_cost(cluster, m_with_diag).time_us
        )

    def test_chunk_fraction_scales_bytes_not_latency(self):
        cluster = h800_node()
        full = all_to_all_cost(cluster, uniform_matrix(8, 1e7))
        half = all_to_all_cost(cluster, uniform_matrix(8, 1e7), chunk_fraction=0.5)
        assert half.wire_bytes == pytest.approx(full.wire_bytes / 2)
        # Latency terms do not shrink, so half-chunk is more than half-time.
        assert half.time_us > full.time_us / 2

    def test_bottleneck_rank_identified(self):
        cluster = h800_node()
        m = uniform_matrix(8, 1e5)
        m[3, :] *= 10
        cost = all_to_all_cost(cluster, m)
        assert cost.bottleneck_rank == 3

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            all_to_all_cost(h800_node(), np.zeros((4, 4)))

    def test_bad_chunk_fraction_rejected(self):
        with pytest.raises(ValueError):
            all_to_all_cost(h800_node(), np.zeros((8, 8)), chunk_fraction=0.0)

    def test_l20_slower_than_h800(self):
        m = uniform_matrix(8, 1e7)
        assert (
            all_to_all_cost(l20_node(), m).time_us
            > all_to_all_cost(h800_node(), m).time_us
        )


class TestRingCollectives:
    def test_group_of_one_is_free(self):
        assert all_gather_cost(h800_node(), 1e6, 1).time_us == 0.0

    def test_reduce_scatter_mirrors_all_gather(self):
        cluster = h800_node()
        assert (
            reduce_scatter_cost(cluster, 1e6, 4).time_us
            == all_gather_cost(cluster, 1e6, 4).time_us
        )

    def test_time_grows_with_group(self):
        cluster = h800_node()
        assert (
            all_gather_cost(cluster, 1e6, 8).time_us
            > all_gather_cost(cluster, 1e6, 2).time_us
        )

    def test_ring_beats_a2a_for_same_received_volume(self):
        """Ring collectives use the fast path; that ordering is what lets
        Megatron's TP collectives stay cheaper per byte than its EP
        all-to-all."""
        cluster = h800_node()
        world = 8
        per_peer = 1e6
        a2a = all_to_all_cost(cluster, uniform_matrix(world, per_peer))
        ring = all_gather_cost(cluster, per_peer, world)
        assert ring.time_us < a2a.time_us

    def test_invalid_group_rejected(self):
        with pytest.raises(ValueError):
            all_gather_cost(h800_node(), 1e6, 9)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            all_gather_cost(h800_node(), -1.0, 4)


class TestHierarchicalAllToAll:
    def test_beats_plain_a2a_on_latency_bound_traffic(self):
        """Tutel's 2D algorithm wins when messages are small (its design
        point); for huge messages the extra hop can lose."""
        cluster = h800_node()
        small = uniform_matrix(8, 2e4)
        assert (
            hierarchical_all_to_all_cost(cluster, small).time_us
            < all_to_all_cost(cluster, small).time_us
        )

    def test_byte_overhead_accounted(self):
        cluster = h800_node()
        m = uniform_matrix(8, 1e6)
        plain = all_to_all_cost(cluster, m)
        hier = hierarchical_all_to_all_cost(cluster, m, tile_ranks=2)
        assert hier.wire_bytes == pytest.approx(plain.wire_bytes * 1.5)

    def test_tile_ranks_must_divide_world(self):
        with pytest.raises(ValueError):
            hierarchical_all_to_all_cost(h800_node(), np.zeros((8, 8)), tile_ranks=3)

    def test_single_rank_free(self):
        cluster = h800_node(1)
        assert (
            hierarchical_all_to_all_cost(cluster, np.zeros((1, 1)), 1).time_us == 0.0
        )


class TestSymmetricHeap:
    def test_malloc_is_symmetric(self):
        heap = SymmetricHeap(h800_node())
        heap.malloc("buf", 1024)
        assert heap.bytes_per_rank == 1024
        assert heap.total_bytes == 1024 * 8

    def test_alignment(self):
        heap = SymmetricHeap(h800_node(), alignment=512)
        buf = heap.malloc("buf", 100)
        assert buf.nbytes == 512

    def test_offsets_disjoint(self):
        heap = SymmetricHeap(h800_node())
        a = heap.malloc("a", 1024)
        b = heap.malloc("b", 2048)
        assert b.offset >= a.offset + a.nbytes

    def test_duplicate_name_rejected(self):
        heap = SymmetricHeap(h800_node())
        heap.malloc("a", 1024)
        with pytest.raises(ValueError):
            heap.malloc("a", 1024)

    def test_free(self):
        heap = SymmetricHeap(h800_node())
        heap.malloc("a", 1024)
        heap.free("a")
        assert heap.bytes_per_rank == 0
        with pytest.raises(KeyError):
            heap.free("a")

    def test_table3_mixtral_buffer(self):
        """Paper Table 3: Mixtral @ M=4096 needs 32 MB per device."""
        heap = SymmetricHeap(h800_node())
        buf = heap.malloc("comm", MIXTRAL_8X7B.nvshmem_buffer_bytes(4096))
        assert buf.mbytes == pytest.approx(32.0)

    def test_remote_token_op_slower_than_local(self):
        heap = SymmetricHeap(h800_node())
        token = MIXTRAL_8X7B.token_bytes
        assert heap.token_op_us(token, remote=True) > heap.token_op_us(
            token, remote=False
        )

    def test_stream_time_saturates(self):
        heap = SymmetricHeap(h800_node())
        t8 = heap.stream_time_us(1e8, num_blocks=8)
        t16 = heap.stream_time_us(1e8, num_blocks=16)
        t64 = heap.stream_time_us(1e8, num_blocks=64)
        assert t16 < t8
        # Once the link saturates, more blocks stop helping (up to the
        # per-message initiation term, which keeps shrinking).
        assert t64 == pytest.approx(
            heap.stream_time_us(1e8, num_blocks=128), rel=1e-5
        )

    def test_stream_time_zero_bytes(self):
        heap = SymmetricHeap(h800_node())
        assert heap.stream_time_us(0.0, num_blocks=4) == 0.0

    def test_invalid_inputs(self):
        heap = SymmetricHeap(h800_node())
        with pytest.raises(ValueError):
            heap.malloc("x", 0)
        with pytest.raises(ValueError):
            heap.token_op_us(0, remote=True)
        with pytest.raises(ValueError):
            heap.stream_time_us(10.0, num_blocks=0)
