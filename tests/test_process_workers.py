"""Process-based sweep execution: byte-identity and merged cache stats.

``executor="process"`` sidesteps the GIL for the pure-Python scheduling
hot loops, but it must be unobservable in the results: every export is
byte-identical to the serial run, worker cache counters merge back into
:func:`repro.perf.cache_stats`, and misuse (bad executor names, custom
registries that only exist in the parent process) fails loudly.
"""

import pytest

from repro import ExperimentSpec, FleetSpec, ServeSpec, TraceSpec, perf
from repro.api.registry import SystemRegistry
from repro.api.scenario import _check_executor

TRACE = TraceSpec(kind="poisson", rps=30, duration_s=2, seed=0)


def _grid():
    return ExperimentSpec.grid(
        models="mixtral", clusters="h800", strategies="sweep",
        tokens=(1024, 2048), systems=("comet", "tutel"),
    )


class TestExperimentProcessRuns:
    def test_rows_byte_identical_to_serial(self):
        spec = _grid()
        perf.clear_caches()
        serial = spec.run()
        perf.clear_caches()
        processed = spec.run(workers=2, executor="process")
        assert processed.to_csv() == serial.to_csv()
        assert processed.to_json() == serial.to_json()

    def test_worker_stats_merge_into_cache_stats(self):
        perf.clear_caches()
        assert perf.worker_process_count() == 0
        _grid().run(workers=2, executor="process")
        assert perf.worker_process_count() >= 1
        stats = perf.cache_stats()
        for entry in stats.values():
            assert entry["processes"] == perf.worker_process_count()
        # The sweep ran in the workers, so the merged totals must show
        # activity the parent-local counters alone would miss.
        merged = stats["timing"]
        assert merged["worker_hits"] + merged["worker_misses"] > 0

    def test_model_level_identical(self):
        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies=(1, 8),
            tokens=1024, overlap_policies=("per_layer", "shortcut"),
            stragglers=(None, 1.5), systems=("comet",),
        )
        perf.clear_caches()
        serial = spec.run(level="model")
        perf.clear_caches()
        processed = spec.run(level="model", workers=2, executor="process")
        assert processed.to_csv() == serial.to_csv()


class TestServeAndFleetProcessRuns:
    def test_serve_reports_identical(self):
        spec = ServeSpec.grid(
            traces=TRACE, systems=("comet", "megatron-cutlass")
        )
        perf.clear_caches()
        serial = spec.run()
        perf.clear_caches()
        processed = spec.run(workers=2, executor="process")
        assert processed.to_csv() == serial.to_csv()
        assert processed.to_json() == serial.to_json()

    def test_fleet_reports_identical(self):
        spec = FleetSpec.grid(
            traces=TRACE, replicas=2,
            routers=("round_robin", "least_queue"), systems="comet",
        )
        serial = spec.run()
        processed = spec.run(workers=2, executor="process")
        assert processed.to_rows() == serial.to_rows()
        assert processed.to_json() == serial.to_json()


class TestGuards:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            _check_executor("greenlet")
        with pytest.raises(ValueError, match="executor"):
            _grid().run(workers=2, executor="greenlet")

    def test_custom_registry_rejected_in_process_mode(self):
        registry = SystemRegistry()
        registry.register("comet", lambda: None)
        spec = ExperimentSpec(
            scenarios=_grid().scenarios,
            systems=("comet",),
            registry=registry,
        )
        with pytest.raises(ValueError, match="registry"):
            spec.run(workers=2, executor="process")

    def test_single_worker_process_request_falls_back_to_serial(self):
        spec = _grid()
        perf.clear_caches()
        result = spec.run(workers=1, executor="process")
        assert perf.worker_process_count() == 0  # never left the process
        assert result.to_csv() == spec.run().to_csv()
