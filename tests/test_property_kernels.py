"""Property-based tests for kernel cost models and the fused simulator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import h800_node
from repro.kernels import gemm_time_us
from repro.kernels.fused import (
    Layer1CommWork,
    simulate_layer0_fused,
    simulate_layer1_fused,
)
from repro.kernels.tiling import TileShape, gemm_tile_count, group_gemm_tile_count
from repro.tensor import build_layer0_schedule, build_layer1_schedule

CLUSTER = h800_node()


@given(
    rows=st.integers(min_value=0, max_value=20000),
    cols=st.integers(min_value=1, max_value=20000),
    tm=st.sampled_from([64, 128, 256]),
    tn=st.sampled_from([64, 128, 256]),
)
@settings(max_examples=100)
def test_tile_cover_bounds(rows, cols, tm, tn):
    """Tiles cover the output exactly: count * area >= rows*cols, and no
    smaller count could (count - something < exact cover)."""
    tile = TileShape(tm, tn)
    count = gemm_tile_count(rows, cols, tile)
    assert count * tm * tn >= rows * cols
    if rows and cols:
        # Tight per dimension: padding is strictly less than one tile.
        row_tiles = -(-rows // tm)
        col_tiles = -(-cols // tn)
        assert count == row_tiles * col_tiles
        assert row_tiles * tm - rows < tm
        assert col_tiles * tn - cols < tn


@given(
    expert_rows=st.lists(st.integers(min_value=0, max_value=4000), min_size=1, max_size=16),
    cols=st.integers(min_value=1, max_value=8192),
)
@settings(max_examples=100)
def test_group_gemm_dominates_merged_gemm(expert_rows, cols):
    """A GroupGEMM can never need fewer tiles than one merged GEMM over
    the same rows — padding per expert only adds tiles."""
    expert_rows = np.array(expert_rows)
    grouped = group_gemm_tile_count(expert_rows, cols)
    merged = gemm_tile_count(int(expert_rows.sum()), cols)
    assert grouped >= merged


@given(
    rows=st.integers(min_value=1, max_value=10000),
    cols=st.integers(min_value=1, max_value=4096),
    k=st.integers(min_value=1, max_value=16384),
    sms=st.integers(min_value=1, max_value=132),
)
@settings(max_examples=100)
def test_gemm_time_monotone_in_sms(rows, cols, k, sms):
    gpu = CLUSTER.gpu
    t_few = gemm_time_us(gpu, rows, cols, k, num_sms=sms).time_us
    t_more = gemm_time_us(gpu, rows, cols, k, num_sms=min(132, sms + 10)).time_us
    assert t_more <= t_few + 1e-9


@st.composite
def fused_cases(draw):
    world = draw(st.sampled_from([2, 4, 8]))
    experts = draw(st.sampled_from([2, 4, 8]))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    scale = draw(st.integers(min_value=1, max_value=30))
    nc = draw(st.integers(min_value=1, max_value=100))
    rng = np.random.default_rng(rng_seed)
    pairs = rng.integers(0, 40 * scale, size=(world, experts))
    return pairs.astype(np.int64), nc


@given(case=fused_cases())
@settings(max_examples=60, deadline=None)
def test_layer0_fused_lower_bounds(case):
    """The overlapped makespan can never beat pure compute or pure comm."""
    pairs, nc = case
    if pairs.sum() == 0:
        return
    schedule = build_layer0_schedule(pairs, rank=0)
    result = simulate_layer0_fused(
        CLUSTER.gpu, CLUSTER.link, schedule,
        token_bytes=8192, k=4096, cols=1024,
        nc=nc if schedule.num_remote else 0,
    )
    assert result.duration_us >= result.comp_standalone_us - 1e-6
    assert result.duration_us >= result.comm_standalone_us - 1e-6
    assert 0.0 <= result.hidden_comm_fraction <= 1.0
    # Perfect-overlap bound: makespan <= comp + comm (serial is the worst).
    assert (
        result.duration_us
        <= result.comp_standalone_us + result.comm_standalone_us + 1e-6
    )


@given(case=fused_cases())
@settings(max_examples=60, deadline=None)
def test_layer1_fused_lower_bounds(case):
    pairs, nc = case
    expert_rows = pairs.sum(axis=0)
    if expert_rows.sum() == 0:
        return
    schedule = build_layer1_schedule(expert_rows, cols=1024)
    rows = int(expert_rows.sum())
    comm = Layer1CommWork(
        reduce_rows=rows,
        local_rows=max(0, rows // 4),
        remote_bulk_rows=0,
        remote_fine_rows=rows - rows // 4,
        row_bytes=2048,
    )
    result = simulate_layer1_fused(
        CLUSTER.gpu, CLUSTER.link, schedule, comm, k=2048, cols=1024, nc=nc,
    )
    assert result.duration_us >= result.comp_standalone_us - 1e-6
    assert 0.0 <= result.hidden_comm_fraction <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    nc=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_sorted_schedule_never_loses(seed, nc):
    """Sort-by-source-rank rescheduling is a pure win in the simulator
    (it only moves dependencies earlier)."""
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, 200, size=(4, 4)).astype(np.int64)
    if pairs.sum() == 0 or pairs.sum() - pairs[0].sum() == 0:
        return
    kwargs = dict(token_bytes=8192, k=4096, cols=2048, nc=nc)
    sorted_sched = build_layer0_schedule(pairs, 0, policy="sorted_by_source")
    shuffled = build_layer0_schedule(
        pairs, 0, policy="token_order", rng=np.random.default_rng(seed + 1)
    )
    r_sorted = simulate_layer0_fused(CLUSTER.gpu, CLUSTER.link, sorted_sched, **kwargs)
    r_shuffled = simulate_layer0_fused(CLUSTER.gpu, CLUSTER.link, shuffled, **kwargs)
    assert r_sorted.duration_us <= r_shuffled.duration_us + 1e-6
