"""Unit semantics of repro.faults: plans, pricing, specs, CLI grammar.

Covers the pure pieces with no simulation in the loop: fault-plan
validation and window algebra, the time-varying cost wrapper's window
selection, straggler composition, migration byte/latency arithmetic,
resilience-spec validation and deterministic backoff, and the CLI fault
grammar round-trip.
"""

import pytest

from repro.cli import _format_fault_specs, _parse_fault_specs
from repro.faults import (
    BrownoutEvent,
    DegradeEvent,
    FailureEvent,
    FaultPlan,
    MigrationSpec,
    OutcomeRecord,
    ResilienceSpec,
    TimeVaryingStepCost,
)
from repro.graph.straggler import StragglerSpec
from repro.moe.config import MIXTRAL_8X7B


class TestDegradeEvent:
    def test_validates_window_and_multipliers(self):
        with pytest.raises(ValueError):
            DegradeEvent(replica=0, t0_ms=100.0, t1_ms=100.0, compute_mult=2.0)
        with pytest.raises(ValueError):
            DegradeEvent(replica=0, t0_ms=-1.0, t1_ms=10.0, compute_mult=2.0)
        with pytest.raises(ValueError):
            DegradeEvent(replica=0, t0_ms=0.0, t1_ms=10.0, compute_mult=0.0)
        # all-unit multipliers degrade nothing
        with pytest.raises(ValueError):
            DegradeEvent(replica=0, t0_ms=0.0, t1_ms=10.0)

    def test_spec_materializes_uniform_multipliers(self):
        event = DegradeEvent(
            replica=1, t0_ms=0.0, t1_ms=10.0, compute_mult=2.0, comm_mult=3.0
        )
        spec = event.spec(4)
        assert spec.num_ranks == 4
        assert all(m == 2.0 for m in spec.compute_mult)
        assert all(m == 3.0 for m in spec.comm_mult)

    def test_explicit_straggler_spec_wins(self):
        skew = StragglerSpec.slow_rank(4, 0, compute_mult=5.0)
        event = DegradeEvent(
            replica=0, t0_ms=0.0, t1_ms=10.0, stragglers=skew
        )
        assert event.spec(4) is skew
        # a uniform explicit spec is a no-op degrade: rejected
        with pytest.raises(ValueError):
            DegradeEvent(
                replica=0, t0_ms=0.0, t1_ms=10.0,
                stragglers=StragglerSpec.uniform(4),
            )


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_label_empty(self):
        plan = FaultPlan()
        assert not plan
        assert plan.label == ""

    def test_label_counts_event_kinds(self):
        plan = FaultPlan(
            crashes=(FailureEvent(replica=0, fail_ms=10.0),),
            degrades=(
                DegradeEvent(
                    replica=1, t0_ms=0.0, t1_ms=5.0, compute_mult=2.0
                ),
            ),
            brownouts=(BrownoutEvent(t0_ms=0.0, t1_ms=5.0, mult=2.0),),
        )
        assert plan
        assert plan.label == "1c+1d+1b"

    def test_boundaries_start_at_zero_and_compose(self):
        plan = FaultPlan(degrades=(
            DegradeEvent(replica=0, t0_ms=100.0, t1_ms=300.0, compute_mult=2.0),
            DegradeEvent(replica=0, t0_ms=200.0, t1_ms=400.0, compute_mult=3.0),
        ))
        windows = plan.boundaries(0, 4, None)
        starts = [start for start, _ in windows]
        assert starts == [0.0, 100.0, 200.0, 300.0, 400.0]
        # outside every event the base model is reused untouched
        assert windows[0][1] is None and windows[-1][1] is None
        # overlap composes multiplicatively
        overlap = dict(windows)[200.0]
        assert overlap.compute_mult[0] == pytest.approx(6.0)

    def test_boundaries_other_replica_untouched(self):
        plan = FaultPlan(degrades=(
            DegradeEvent(replica=0, t0_ms=10.0, t1_ms=20.0, compute_mult=2.0),
        ))
        assert plan.boundaries(1, 4, None) == ()

    def test_brownout_mult_is_product_of_active_windows(self):
        plan = FaultPlan(brownouts=(
            BrownoutEvent(t0_ms=0.0, t1_ms=100.0, mult=2.0),
            BrownoutEvent(t0_ms=50.0, t1_ms=150.0, mult=3.0),
        ))
        assert plan.brownout_mult(25.0) == pytest.approx(2.0)
        assert plan.brownout_mult(75.0) == pytest.approx(6.0)
        assert plan.brownout_mult(125.0) == pytest.approx(3.0)
        assert plan.brownout_mult(200.0) == 1.0


class TestStragglerCompose:
    def test_elementwise_product(self):
        a = StragglerSpec.slow_rank(2, 0, compute_mult=2.0)
        b = StragglerSpec.slow_rank(2, 1, compute_mult=3.0)
        c = a.compose(b)
        assert c.compute_mult == (2.0, 3.0)

    def test_rank_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            StragglerSpec.uniform(2).compose(StragglerSpec.uniform(4))


class _FakeModel:
    def __init__(self, ms):
        self.ms = ms

    def step_ms(self, prefill_tokens, decode_tokens):
        return self.ms

    def step_ms_at(self, now, prefill_tokens, decode_tokens):
        return self.step_ms(prefill_tokens, decode_tokens)

    def prefill_ms(self, prompt_tokens):
        return self.ms

    def clear(self):
        pass

    def cache_stats(self):
        return {}


class TestTimeVaryingStepCost:
    def test_window_selection_by_launch_time(self):
        model = TimeVaryingStepCost(
            starts=[0.0, 100.0, 200.0],
            models=[_FakeModel(1.0), _FakeModel(5.0), _FakeModel(1.0)],
        )
        assert model.step_ms_at(0.0, 10, 0) == 1.0
        assert model.step_ms_at(99.9, 10, 0) == 1.0
        assert model.step_ms_at(100.0, 10, 0) == 5.0
        assert model.step_ms_at(199.9, 10, 0) == 5.0
        assert model.step_ms_at(200.0, 10, 0) == 1.0

    def test_time_invariant_entry_points_use_window_zero(self):
        model = TimeVaryingStepCost(
            starts=[0.0, 100.0],
            models=[_FakeModel(1.0), _FakeModel(5.0)],
        )
        assert model.step_ms(10, 0) == 1.0
        assert model.prefill_ms(10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingStepCost(starts=[10.0], models=[_FakeModel(1.0)])
        with pytest.raises(ValueError):
            TimeVaryingStepCost(
                starts=[0.0, 0.0],
                models=[_FakeModel(1.0), _FakeModel(2.0)],
            )
        with pytest.raises(ValueError):
            TimeVaryingStepCost(starts=[0.0, 1.0], models=[_FakeModel(1.0)])


class TestMigrationSpec:
    def test_default_kv_bytes_follow_model_shapes(self):
        spec = MigrationSpec()
        per_token = 2.0 * MIXTRAL_8X7B.num_layers * MIXTRAL_8X7B.token_bytes
        assert spec.kv_bytes(MIXTRAL_8X7B, 10) == pytest.approx(10 * per_token)
        override = MigrationSpec(kv_bytes_per_token=100.0)
        assert override.kv_bytes(MIXTRAL_8X7B, 10) == pytest.approx(1000.0)

    def test_transfer_scales_with_bytes_and_brownout(self):
        spec = MigrationSpec()
        small = spec.transfer_ms(1e6, 1)
        large = spec.transfer_ms(1e8, 1)
        assert large > small > 0
        assert spec.transfer_ms(1e6, 1, mult=2.0) == pytest.approx(2 * small)

    def test_outcome_record_kind_validated(self):
        OutcomeRecord(rid=0, t_ms=1.0, kind="timeout")
        OutcomeRecord(rid=0, t_ms=1.0, kind="shed")
        with pytest.raises(ValueError):
            OutcomeRecord(rid=0, t_ms=1.0, kind="lost")


class TestResilienceSpec:
    def test_all_off_is_falsy_with_empty_label(self):
        spec = ResilienceSpec()
        assert not spec
        assert spec.label == ""
        assert not spec.wants_deadline
        assert not spec.wants_shed
        assert not spec.wants_detector

    def test_retries_require_timeout(self):
        with pytest.raises(ValueError):
            ResilienceSpec(max_retries=1)
        ResilienceSpec(timeout_ms=100.0, max_retries=1)

    def test_factors_must_exceed_one(self):
        with pytest.raises(ValueError):
            ResilienceSpec(slow_factor=1.0)
        with pytest.raises(ValueError):
            ResilienceSpec(queue_factor=0.5)

    def test_backoff_deterministic_and_exponential_in_expectation(self):
        spec = ResilienceSpec(timeout_ms=100.0, max_retries=3, backoff_ms=50.0)
        a = spec.retry_backoff_ms(7, 0)
        assert a == spec.retry_backoff_ms(7, 0)  # pure in (seed, rid, attempt)
        assert a != spec.retry_backoff_ms(8, 0)
        # jitter stays inside [0.5, 1.5) of the doubling schedule
        for attempt in range(3):
            value = spec.retry_backoff_ms(7, attempt)
            base = 50.0 * 2**attempt
            assert 0.5 * base <= value < 1.5 * base
        other = ResilienceSpec(
            timeout_ms=100.0, max_retries=3, backoff_ms=50.0, seed=1
        )
        assert other.retry_backoff_ms(7, 0) != a

    def test_label_mentions_configured_mechanisms(self):
        label = ResilienceSpec(
            timeout_ms=500.0, max_retries=2, shed_factor=1.5, slow_factor=2.0
        ).label
        assert "to500" in label and "r2" in label
        assert "shed1.5" in label and "det2" in label


class TestCliFaultGrammar:
    def test_crash_specs_parse(self):
        crashes, degrades = _parse_fault_specs(["1@1000:3000", "2@500"])
        assert degrades == ()
        assert crashes == (
            FailureEvent(replica=1, fail_ms=1000.0, recover_ms=3000.0),
            FailureEvent(replica=2, fail_ms=500.0, recover_ms=None),
        )

    def test_degrade_specs_parse(self):
        crashes, degrades = _parse_fault_specs(["0@500:2500:x1.5"])
        assert crashes == ()
        assert degrades == (
            DegradeEvent(
                replica=0, t0_ms=500.0, t1_ms=2500.0,
                compute_mult=1.5, comm_mult=1.5,
            ),
        )

    def test_bad_specs_rejected_with_context(self):
        for bad in ("nope", "1@", "1@a", "1@10:20:30", "1@10:20:x1.0"):
            with pytest.raises(ValueError, match="bad fault spec"):
                _parse_fault_specs([bad])

    def test_round_trip_is_identity(self):
        specs = ["1@1000:3000", "2@500", "0@500:2500:x1.5", "1@0:100:x4"]
        crashes, degrades = _parse_fault_specs(specs)
        formatted = _format_fault_specs(crashes, degrades)
        assert _parse_fault_specs(formatted) == (crashes, degrades)
