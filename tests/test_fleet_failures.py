"""Replica failure/recovery semantics: conservation of requests.

A crash reclaims the victim's waiting queue, in-flight admissions, and
running sequences, resets their generation state, and re-dispatches them
through the router.  The invariants under *any* failure plan whose
replicas all eventually recover:

- every offered request completes exactly once (no loss, no duplication);
- timestamps stay causally ordered per record
  (arrival <= first token <= completion);
- goodput accounting is conserved — generated tokens equal the sum over
  records of their output lengths, regardless of how many times a
  request was bounced between replicas.
"""

import functools

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import FleetSpec, TraceSpec
from repro.fleet import FailureEvent

TRACE = TraceSpec(kind="poisson", rps=40, duration_s=4, seed=5)


def run_with_failures(failures, replicas=3, trace=TRACE, router="least_queue"):
    return (
        FleetSpec.grid(
            traces=trace,
            systems="comet",
            replicas=replicas,
            routers=router,
            failures=failures,
        )
        .run()
        .reports[0]
    )


def assert_conserved(report):
    rids = [r.rid for r in report.records]
    assert len(rids) == len(set(rids)), "a request completed twice"
    assert report.num_requests == report.offered, "a request was lost"
    assert report.unserved == 0
    for record in report.records:
        assert record.arrival_ms <= record.first_token_ms <= record.completion_ms
        assert record.output_tokens >= 1


class TestSingleFailure:
    def test_mid_trace_crash_with_recovery_conserves_requests(self):
        report = run_with_failures(
            (FailureEvent(replica=0, fail_ms=1000.0, recover_ms=2500.0),)
        )
        assert report.failures == 1 and report.recoveries == 1
        assert_conserved(report)

    def test_crash_without_recovery_survivors_absorb_load(self):
        report = run_with_failures((FailureEvent(replica=1, fail_ms=500.0),))
        assert report.failures == 1 and report.recoveries == 0
        assert_conserved(report)

    def test_failed_replica_window_not_shrunk(self):
        # active_ms is provisioned time: a crashed replica still holds
        # its GPUs, so utilization honestly reflects the dead capacity.
        clean = run_with_failures(())
        failed = run_with_failures((FailureEvent(replica=0, fail_ms=500.0),))
        dead = next(s for s in failed.replica_stats if s.replica == 0)
        assert dead.active_ms > 0
        # The dead replica did strictly less work than its clean twin.
        clean0 = next(s for s in clean.replica_stats if s.replica == 0)
        assert dead.busy_ms < clean0.busy_ms

    def test_failure_events_recorded_in_timeline(self):
        report = run_with_failures(
            (FailureEvent(replica=2, fail_ms=800.0, recover_ms=1600.0),)
        )
        kinds = [(e.kind, e.replica) for e in report.events]
        assert ("fail", 2) in kinds
        assert ("recover", 2) in kinds


class TestRepeatedFailures:
    def test_same_replica_fails_twice(self):
        plan = (
            FailureEvent(replica=0, fail_ms=600.0, recover_ms=1200.0),
            FailureEvent(replica=0, fail_ms=2000.0, recover_ms=2600.0),
        )
        report = run_with_failures(plan)
        assert report.failures == 2 and report.recoveries == 2
        assert_conserved(report)

    def test_staggered_failures_across_replicas(self):
        plan = (
            FailureEvent(replica=0, fail_ms=400.0, recover_ms=1400.0),
            FailureEvent(replica=1, fail_ms=900.0, recover_ms=1900.0),
            FailureEvent(replica=2, fail_ms=1400.0, recover_ms=2400.0),
        )
        assert_conserved(run_with_failures(plan))


@functools.lru_cache(maxsize=None)
def clean_run(router):
    return run_with_failures((), router=router)


# Regression: a recovery scheduled just past the final completion must
# still fire (and be counted) before the run closes.
@example(fail_ms=3413.0, outage_ms=1983.0, victim=0, router="least_queue")
@given(
    fail_ms=st.floats(min_value=1.0, max_value=3500.0),
    outage_ms=st.floats(min_value=10.0, max_value=2000.0),
    victim=st.integers(min_value=0, max_value=2),
    router=st.sampled_from(["round_robin", "least_queue", "power_of_two"]),
)
@settings(max_examples=10, deadline=None)
def test_any_recovering_failure_conserves_requests(
    fail_ms, outage_ms, victim, router
):
    report = run_with_failures(
        (FailureEvent(replica=victim, fail_ms=fail_ms, recover_ms=fail_ms + outage_ms),),
        router=router,
    )
    assert_conserved(report)
    # Goodput accounting survives re-queues: each rid carries exactly
    # the prompt/output lengths the trace assigned it, so total tokens
    # match a failure-free run of the same trace.
    by_rid = {r.rid: r for r in clean_run(router).records}
    for record in report.records:
        twin = by_rid[record.rid]
        assert record.prompt_tokens == twin.prompt_tokens
        assert record.output_tokens == twin.output_tokens
    assert report.failures == 1 and report.recoveries == 1
