"""Dynamic side of the lint story: cache stats stay consistent under
thread hammering.

The static rules promise cache *keys* are sound; this suite hammers the
cache *implementations* — 8 threads of mixed get/put/clear/stats over
``BoundedCache``/``TimingCache`` instances and the live
``GRAPH_CACHE``/``STEP_COST_CACHE`` singletons — under a 1 µs thread
switch interval, and asserts the documented lock guarantees: counters
account exactly (every ``get`` is one hit or one miss), ``size`` never
exceeds ``maxsize``, and every ``stats()`` snapshot is internally
consistent rather than a torn mix (extends PR 5's lock-consistency
tests).
"""

import sys
import threading

import pytest

from repro.perf import (
    GRAPH_CACHE,
    STEP_COST_CACHE,
    BoundedCache,
    TimingCache,
)

THREADS = 8
OPS = 400


@pytest.fixture
def fine_switch_interval():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _run_threads(worker):
    errors = []

    def wrapped(tid):
        try:
            worker(tid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(tid,))
        for tid in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def _assert_snapshot_consistent(doc):
    assert 0 <= doc["size"] <= doc["maxsize"]
    assert doc["hits"] >= 0
    assert doc["misses"] >= 0
    assert doc["evictions"] >= 0
    total = doc["hits"] + doc["misses"]
    expected = doc["hits"] / total if total else 0.0
    assert abs(doc["hit_rate"] - expected) < 1e-12, (
        "hit_rate torn from its own counters"
    )


@pytest.mark.parametrize("cache_cls", [BoundedCache, TimingCache])
def test_counters_account_exactly_without_clears(
    cache_cls, fine_switch_interval
):
    cache = cache_cls(maxsize=32)
    gets_per_thread = OPS
    puts_per_thread = OPS // 2

    def worker(tid):
        for i in range(OPS):
            key = (tid * 7 + i) % 96
            if i % 2 == 0:
                cache.put(key, key + 1)
            cache.get(key)
        # Each thread issued OPS gets and OPS/2 puts in total.

    _run_threads(worker)
    doc = cache.stats()
    assert doc["hits"] + doc["misses"] == THREADS * gets_per_thread
    assert doc["size"] <= 32
    assert doc["size"] + doc["evictions"] <= THREADS * puts_per_thread
    _assert_snapshot_consistent(doc)


def test_live_caches_survive_mixed_clear_hammer(fine_switch_interval):
    caches = (GRAPH_CACHE, STEP_COST_CACHE, TimingCache(maxsize=16))
    stop = threading.Event()
    snapshots = []

    def reader():
        while not stop.is_set():
            for cache in caches:
                snapshots.append(cache.stats())

    def worker(tid):
        for i in range(OPS):
            cache = caches[i % len(caches)]
            key = ("lint-hammer", tid, i % 24)
            op = i % 5
            if op in (0, 1):
                cache.put(key, i + 1)
            elif op in (2, 3):
                value = cache.get(key)
                assert value is None or value >= 1
            else:
                cache.clear()
            assert len(cache) <= cache.maxsize

    sampler = threading.Thread(target=reader)
    sampler.start()
    try:
        _run_threads(worker)
    finally:
        stop.set()
        sampler.join()

    assert snapshots, "the stats sampler never ran"
    for doc in snapshots:
        _assert_snapshot_consistent(doc)
    for cache in caches:
        _assert_snapshot_consistent(cache.stats())
        cache.clear()
