"""Scheduler unit tests on a synthetic cost model, plus adapter tests.

The synthetic cost model makes iteration timing a simple linear function
of the batch's token count, so batching behaviour (admission, budgets,
policies, TTFT/TPOT accounting) can be asserted exactly, independent of
the MoE system timings.
"""

import pytest

from repro import MIXTRAL_8X7B, ParallelStrategy, h800_node
from repro.serve.engine_adapter import StepCostModel
from repro.serve.scheduler import POLICY_REGISTRY, ContinuousBatchingScheduler
from repro.serve.traffic import Request
from repro.systems import Comet, FasterMoE, Tutel
from repro.systems.base import UnsupportedWorkload


class LinearCostModel:
    """step = base_ms + per_token_ms * tokens; prefill estimate to match."""

    def __init__(self, base_ms=1.0, per_token_ms=0.01):
        self.base_ms = base_ms
        self.per_token_ms = per_token_ms

    def step_ms(self, prefill_tokens, decode_tokens):
        return self.base_ms + self.per_token_ms * (prefill_tokens + decode_tokens)

    def prefill_ms(self, prompt_tokens):
        return self.step_ms(prompt_tokens, 0)


def request(rid, arrival_ms, prompt=100, output=4):
    return Request(
        rid=rid, arrival_ms=arrival_ms, prompt_tokens=prompt, output_tokens=output
    )


def run_trace(trace, **kwargs):
    scheduler = ContinuousBatchingScheduler(
        cost_model=LinearCostModel(), trace=tuple(trace), **kwargs
    )
    return scheduler.run()


class TestContinuousBatching:
    def test_single_request_lifecycle(self):
        # prefill step: 1 + 0.01*100 = 2ms -> TTFT; then 3 decode steps of
        # 1 + 0.01*1 = 1.01ms each for the remaining 3 tokens.
        records, timeline = run_trace([request(0, arrival_ms=5.0)])
        (rec,) = records
        assert rec.first_token_ms == pytest.approx(7.0)
        assert rec.ttft_ms == pytest.approx(2.0)
        assert rec.completion_ms == pytest.approx(7.0 + 3 * 1.01)
        assert rec.tpot_ms == pytest.approx(1.01)
        assert len(timeline) == 4

    def test_every_request_served_exactly_once(self):
        trace = [request(i, arrival_ms=i * 0.5) for i in range(40)]
        records, _ = run_trace(trace)
        assert sorted(r.rid for r in records) == list(range(40))

    def test_deterministic_across_runs(self):
        trace = tuple(request(i, arrival_ms=i * 0.3) for i in range(30))
        assert run_trace(trace) == run_trace(trace)

    def test_token_budget_respected(self):
        # 10 simultaneous 100-token prompts under a 250-token budget:
        # at most 2 prefills per iteration.
        trace = [request(i, arrival_ms=0.0) for i in range(10)]
        records, timeline = run_trace(trace, max_batch_tokens=250)
        assert all(p.batch_tokens <= 250 for p in timeline)
        assert sorted(r.rid for r in records) == list(range(10))

    def test_oversized_prompt_admitted_alone(self):
        trace = [
            request(0, arrival_ms=0.0, prompt=5000),
            request(1, arrival_ms=0.0, prompt=10),
        ]
        records, timeline = run_trace(trace, max_batch_tokens=1000)
        assert sorted(r.rid for r in records) == [0, 1]
        # The oversized prefill ran by itself in the first iteration.
        assert timeline[0].batch_tokens == 5000
        assert timeline[0].running == 1

    def test_max_batch_size_caps_concurrency(self):
        trace = [request(i, arrival_ms=0.0, prompt=1, output=8) for i in range(12)]
        _, timeline = run_trace(trace, max_batch_size=4)
        assert all(p.running <= 4 for p in timeline)

    def test_idle_gap_then_second_wave(self):
        trace = [request(0, arrival_ms=0.0), request(1, arrival_ms=500.0)]
        records, _ = run_trace(trace)
        by_rid = {r.rid: r for r in records}
        # The engine slept through the idle gap and restarted on arrival.
        assert by_rid[1].first_token_ms == pytest.approx(502.0)
        assert by_rid[1].ttft_ms == pytest.approx(2.0)

    def test_continuous_batching_interleaves_decode_and_prefill(self):
        # A long-output request is decoding when a second arrives; the
        # second's prefill joins a decode iteration (batch > 1 token).
        trace = [
            request(0, arrival_ms=0.0, prompt=50, output=50),
            request(1, arrival_ms=5.0, prompt=50, output=2),
        ]
        _, timeline = run_trace(trace)
        mixed = [p for p in timeline if p.running == 2]
        assert mixed, "second request never joined the running batch"

    def test_decode_slows_down_with_larger_batches(self):
        solo_records, _ = run_trace([request(0, 0.0, prompt=10, output=50)])
        crowd = [request(i, 0.0, prompt=10, output=50) for i in range(20)]
        crowd_records, _ = run_trace(crowd)
        solo_tpot = solo_records[0].tpot_ms
        crowd_tpot = max(r.tpot_ms for r in crowd_records)
        assert crowd_tpot > solo_tpot


class TestPolicies:
    def test_policy_names_registered(self):
        assert set(POLICY_REGISTRY.names()) == {"fcfs", "spf", "slo"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            ContinuousBatchingScheduler(
                cost_model=LinearCostModel(), trace=(), policy="lifo"
            )

    def test_fcfs_preserves_arrival_order(self):
        trace = [
            request(0, arrival_ms=0.0, prompt=400),
            request(1, arrival_ms=1.0, prompt=10),
            request(2, arrival_ms=2.0, prompt=10),
        ]
        records, _ = run_trace(trace, max_batch_tokens=410, policy="fcfs")
        by_rid = {r.rid: r for r in records}
        assert by_rid[0].first_token_ms <= by_rid[1].first_token_ms

    def test_spf_prefers_short_prompts(self):
        # All arrive together; budget fits only one prefill per iteration.
        trace = [
            request(0, arrival_ms=0.0, prompt=400),
            request(1, arrival_ms=0.0, prompt=10),
        ]
        records, _ = run_trace(trace, max_batch_tokens=400, policy="spf")
        by_rid = {r.rid: r for r in records}
        assert by_rid[1].first_token_ms < by_rid[0].first_token_ms

    def test_slo_policy_prioritises_tight_deadlines(self):
        # Equal arrivals: the long prompt has less TTFT slack (its prefill
        # takes longer), so the SLO-aware policy runs it first.
        trace = [
            request(0, arrival_ms=0.0, prompt=10),
            request(1, arrival_ms=0.0, prompt=400),
        ]
        records, _ = run_trace(trace, max_batch_tokens=400, policy="slo")
        by_rid = {r.rid: r for r in records}
        assert by_rid[1].first_token_ms < by_rid[0].first_token_ms


class TestStepCostModel:
    def setup_method(self):
        self.cluster = h800_node()
        self.strategy = ParallelStrategy(tp_size=1, ep_size=8)

    def model(self, system, **kwargs):
        return StepCostModel(
            system, MIXTRAL_8X7B, self.cluster, self.strategy, **kwargs
        )

    def test_bucket_rounds_up_to_world_multiple(self):
        cost = self.model(Comet(), bucket_tokens=100)
        assert cost.bucket % self.cluster.world_size == 0
        assert cost.bucketed(1) == cost.bucket
        assert cost.bucketed(cost.bucket + 1) == 2 * cost.bucket

    def test_step_cost_monotone_in_tokens(self):
        cost = self.model(Comet())
        small = cost.step_ms(256, 0)
        large = cost.step_ms(4096, 0)
        assert large > small > 0

    def test_step_cost_cached_per_bucket(self):
        cost = self.model(Comet(), bucket_tokens=256)
        assert cost.step_ms(100, 0) == cost.step_ms(50, 50)

    def test_comet_steps_faster_than_tutel(self):
        comet = self.model(Comet())
        tutel = self.model(Tutel())
        for tokens in (256, 2048, 8192):
            assert comet.step_ms(tokens, 0) < tutel.step_ms(tokens, 0)

    def test_unsupported_system_fails_fast(self):
        with pytest.raises(UnsupportedWorkload):
            StepCostModel(
                FasterMoE(),
                MIXTRAL_8X7B,
                self.cluster,
                ParallelStrategy(tp_size=2, ep_size=4),
            )

    def test_scaling_includes_all_model_layers(self):
        cost = self.model(Comet())
        # One step prices num_layers transformer layers plus overhead.
        assert cost.step_us(256, 0) > MIXTRAL_8X7B.num_layers * 100
