"""Unit tests for GPU, link, and cluster hardware models."""

import pytest

from repro.hw import H800, L20, ClusterSpec, GpuSpec, LinkSpec, h800_node, l20_node


class TestGpuSpec:
    def test_h800_preset_shape(self):
        assert H800.num_sms == 132
        assert H800.tensor_tflops == pytest.approx(989.0)

    def test_l20_preset_shape(self):
        assert L20.num_sms == 92

    def test_flops_per_us_applies_efficiency(self):
        gpu = GpuSpec("x", num_sms=100, tensor_tflops=100.0, mma_efficiency=0.5)
        assert gpu.flops_per_us == pytest.approx(100e12 * 0.5 / 1e6)

    def test_per_sm_rate(self):
        gpu = GpuSpec("x", num_sms=10, tensor_tflops=10.0, mma_efficiency=1.0)
        assert gpu.flops_per_sm_us == pytest.approx(gpu.flops_per_us / 10)

    def test_gemm_flop_time_scales_inverse_with_sms(self):
        t_full = H800.gemm_flop_time_us(1e12)
        t_half = H800.gemm_flop_time_us(1e12, num_sms=H800.num_sms // 2)
        assert t_half == pytest.approx(2 * t_full)

    def test_invalid_sms_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec("x", num_sms=0, tensor_tflops=1.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            GpuSpec("x", num_sms=1, tensor_tflops=1.0, mma_efficiency=1.5)

    def test_zero_sms_query_rejected(self):
        with pytest.raises(ValueError):
            H800.gemm_flop_time_us(1.0, num_sms=0)


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec("l", gbps=1.0, latency_us=2.0, per_message_us=0.5)
        # 1 GB/s = 1000 bytes/us; 1000 bytes should take 1us + overheads.
        assert link.transfer_us(1000.0) == pytest.approx(2.0 + 0.5 + 1.0)

    def test_transfer_multiple_messages(self):
        link = LinkSpec("l", gbps=1.0, latency_us=0.0, per_message_us=1.0)
        assert link.transfer_us(0.0, messages=5) == pytest.approx(5.0)

    def test_effective_bandwidth_caps_at_link(self):
        link = LinkSpec("l", gbps=10.0, per_block_gbps=4.0)
        assert link.effective_bandwidth(1) == pytest.approx(4e3)
        assert link.effective_bandwidth(2) == pytest.approx(8e3)
        assert link.effective_bandwidth(100) == pytest.approx(10e3)

    def test_effective_bandwidth_zero_blocks(self):
        link = LinkSpec("l", gbps=10.0)
        assert link.effective_bandwidth(0) == 0.0

    def test_blocks_to_saturate(self):
        link = LinkSpec("l", gbps=10.0, per_block_gbps=4.0)
        assert link.blocks_to_saturate() == 3

    def test_blocks_to_saturate_exact_division(self):
        link = LinkSpec("l", gbps=8.0, per_block_gbps=4.0)
        assert link.blocks_to_saturate() == 2

    def test_block_message_rate_penalises_small_messages(self):
        link = LinkSpec("l", gbps=100.0, per_message_us=0.1, per_block_gbps=8.0)
        small = link.block_message_bytes_per_us(256)
        large = link.block_message_bytes_per_us(65536)
        assert small < large <= link.block_bytes_per_us

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", gbps=1.0).transfer_us(-1.0)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("l", gbps=1.0, a2a_efficiency=0.0)

    def test_collective_tiers_ordered(self):
        # Fine-grained cap >= ring >= all-to-all on both preset links.
        for cluster in (h800_node(), l20_node()):
            link = cluster.link
            assert link.bytes_per_us >= link.ring_bytes_per_us >= link.a2a_bytes_per_us


class TestClusterSpec:
    def test_presets(self):
        assert h800_node().world_size == 8
        assert l20_node().world_size == 8
        assert h800_node(4).world_size == 4

    def test_total_sms(self):
        assert h800_node().total_sms == 8 * 132

    def test_p2p_local_uses_hbm(self):
        cluster = h800_node()
        local = cluster.p2p_time_us(0, 0, 1e6)
        remote = cluster.p2p_time_us(0, 1, 1e6)
        assert local < remote

    def test_p2p_rank_validation(self):
        with pytest.raises(ValueError):
            h800_node().p2p_time_us(0, 9, 10.0)

    def test_world_size_positive(self):
        with pytest.raises(ValueError):
            ClusterSpec("c", H800, h800_node().link, world_size=0)

    def test_l20_is_slower_fabric(self):
        assert l20_node().link.gbps < h800_node().link.gbps

    def test_with_world_size(self):
        assert h800_node().with_world_size(16).world_size == 16
