"""Tests for the training-step extension (fwd + bwd + sync + optimizer)."""

import pytest

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.runtime.training import run_training_step
from repro.systems import Comet, MegatronCutlass, Tutel


def step(system, tp=1, ep=8, tokens=8192, **kw):
    return run_training_step(
        system, MIXTRAL_8X7B, h800_node(), ParallelStrategy(tp, ep),
        total_tokens=tokens, **kw,
    )


class TestBackwardVariant:
    def test_backward_has_double_gemm_scale(self):
        system = MegatronCutlass()
        assert system.backward_variant().gemm_scale == 2.0
        assert system.gemm_scale == 1.0  # original untouched

    def test_comet_backward_fresh_profile_cache(self):
        system = Comet()
        workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192
        )
        system.time_layer(workload)
        backward = system.backward_variant()
        assert backward.gemm_scale == 2.0
        assert backward._profiles == {}

    def test_backward_layer_slower_than_forward(self):
        """dgrad + wgrad roughly doubles the compute side."""
        workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192
        )
        for system in (MegatronCutlass(), Comet()):
            fwd = system.time_layer(workload).total_us
            bwd = system.backward_variant().time_layer(workload).total_us
            assert bwd > fwd * 1.2

    def test_invalid_gemm_scale(self):
        with pytest.raises(ValueError):
            MegatronCutlass(gemm_scale=0.0)


class TestTrainingStep:
    def test_step_composition(self):
        timing = step(MegatronCutlass())
        assert timing.step_us == pytest.approx(
            timing.num_layers * timing.layer_us
            + timing.grad_sync_us
            + timing.optimizer_us
        )
        assert timing.attention_bwd_us == pytest.approx(2 * timing.attention_fwd_us)

    def test_comet_speeds_up_training(self):
        base = step(MegatronCutlass())
        comet = step(Comet())
        assert comet.step_us < base.step_us
        # Identical non-MoE work across systems.
        assert comet.attention_fwd_us == base.attention_fwd_us
        assert comet.grad_sync_us == base.grad_sync_us
        assert comet.optimizer_us == base.optimizer_us

    def test_training_speedup_band(self):
        """End-to-end training speedup should sit near the paper's 1.71x
        end-to-end claim (same overlap applies to both passes)."""
        base = step(MegatronCutlass(), tokens=16384)
        comet = step(Comet(), tokens=16384)
        speedup = base.step_us / comet.step_us
        assert 1.2 < speedup < 2.4

    def test_backward_hides_more_than_forward_for_comet(self):
        """Twice the compute gives the backward pass more room to hide
        the same communication."""
        timing = step(Comet(), tokens=8192)
        assert (
            timing.moe_bwd.hidden_comm_fraction
            >= timing.moe_fwd.hidden_comm_fraction - 1e-9
        )

    def test_grad_sync_zero_without_dp(self):
        timing = step(MegatronCutlass(), tp=8, ep=1, tokens=8192)
        assert timing.grad_sync_us == 0.0

    def test_moe_fraction_dominates(self):
        timing = step(MegatronCutlass())
        assert timing.moe_fraction > 0.5

    def test_imbalance_slows_training(self):
        balanced = step(MegatronCutlass(), seed=5)
        skewed = step(MegatronCutlass(), imbalance_std=0.05, seed=5)
        assert skewed.step_us > balanced.step_us

    def test_tutel_between_megatron_and_comet(self):
        base = step(MegatronCutlass(), tokens=16384).step_us
        tutel = step(Tutel(), tokens=16384).step_us
        comet = step(Comet(), tokens=16384).step_us
        assert comet < tutel < base
