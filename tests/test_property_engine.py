"""Property-based tests for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Resource


@given(delays=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
@settings(max_examples=60)
def test_clock_visits_events_in_sorted_order(delays):
    """The environment's clock is non-decreasing and hits every timeout."""
    env = Environment()
    visited = []

    def proc(delay):
        yield env.timeout(delay)
        visited.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert visited == sorted(visited)
    assert len(visited) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=20))
@settings(max_examples=60)
def test_all_of_fires_at_max_any_of_at_min(delays):
    env = Environment()
    stamps = {}

    def waiter(tag, condition):
        yield condition
        stamps[tag] = env.now

    def setup():
        events_all = [env.timeout(d) for d in delays]
        events_any = [env.timeout(d) for d in delays]
        env.process(waiter("all", AllOf(env, events_all)))
        env.process(waiter("any", AnyOf(env, events_any)))
        return
        yield  # pragma: no cover - makes this a generator

    # Create events inside the running environment via a plain call.
    events_all = [env.timeout(d) for d in delays]
    events_any = [env.timeout(d) for d in delays]
    env.process(waiter("all", AllOf(env, events_all)))
    env.process(waiter("any", AnyOf(env, events_any)))
    env.run()
    assert stamps["all"] == max(delays)
    assert stamps["any"] == min(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    jobs=st.integers(min_value=1, max_value=40),
    service=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=60)
def test_resource_throughput_law(capacity, jobs, service):
    """With c servers and uniform service time s, n jobs finish at
    ceil(n / c) * s — the resource must neither overbook nor idle."""
    env = Environment()
    resource = Resource(env, capacity=capacity)
    done = []

    def worker():
        with resource.request() as req:
            yield req
            yield env.timeout(service)
            done.append(env.now)

    for _ in range(jobs):
        env.process(worker())
    env.run()
    waves = -(-jobs // capacity)
    assert max(done) > (waves - 1) * service - 1e-9
    assert abs(max(done) - waves * service) < 1e-6


@given(
    n=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40)
def test_deterministic_replay(n, seed):
    """Identical process structure yields identical event history."""
    import random

    def build():
        rng = random.Random(seed)
        env = Environment()
        log = []

        def proc(tag):
            for _ in range(3):
                yield env.timeout(rng.random())
                log.append((tag, env.now))

        for tag in range(n):
            env.process(proc(tag))
        env.run()
        return log

    assert build() == build()
