"""Cross-validation: heap scheduler vs DES simulation of the fused kernel.

The analytic list scheduler in :mod:`repro.kernels.fused` and the
process-based simulation in :mod:`repro.kernels.fused_des` are developed
independently; on identical inputs they must produce (near-)identical
makespans.  Small discrepancies can only come from tile-assignment order
ties, bounded by one tile duration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import h800_node
from repro.kernels.fused import simulate_layer0_fused
from repro.kernels.fused_des import des_layer0_makespan
from repro.kernels.gemm import tile_time_us
from repro.tensor import build_layer0_schedule

CLUSTER = h800_node()


def compare(pairs: np.ndarray, nc: int, cols: int = 1024, k: int = 2048) -> None:
    schedule = build_layer0_schedule(pairs, rank=0)
    effective_nc = nc if schedule.num_remote else 0
    kwargs = dict(token_bytes=4096, k=k, cols=cols, nc=effective_nc)
    heap_result = simulate_layer0_fused(CLUSTER.gpu, CLUSTER.link, schedule, **kwargs)
    des_result = des_layer0_makespan(CLUSTER.gpu, CLUSTER.link, schedule, **kwargs)
    tolerance = tile_time_us(CLUSTER.gpu, k) + 1e-6
    assert heap_result.duration_us == pytest.approx(des_result, abs=tolerance)


class TestCrossCheckFixedCases:
    def test_all_local(self):
        pairs = np.zeros((4, 2), dtype=np.int64)
        pairs[0] = [300, 500]
        compare(pairs, nc=8)

    def test_all_remote(self):
        pairs = np.zeros((4, 2), dtype=np.int64)
        pairs[1] = [400, 400]
        pairs[2] = [100, 700]
        compare(pairs, nc=16)

    def test_mixed(self):
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, 600, size=(8, 4))
        compare(pairs.astype(np.int64), nc=24)

    def test_tiny(self):
        pairs = np.array([[1, 0], [0, 1]], dtype=np.int64)
        compare(pairs, nc=2)

    def test_comm_bound(self):
        """Few comm blocks: arrival paces everything."""
        pairs = np.zeros((4, 2), dtype=np.int64)
        pairs[1] = [2000, 2000]
        compare(pairs, nc=1)

    def test_compute_bound(self):
        """Many comm blocks, deep GEMM: compute paces everything."""
        rng = np.random.default_rng(9)
        pairs = rng.integers(100, 400, size=(4, 4)).astype(np.int64)
        compare(pairs, nc=64, cols=4096, k=8192)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    nc=st.integers(min_value=1, max_value=64),
    world=st.sampled_from([2, 4, 8]),
    experts=st.integers(min_value=1, max_value=6),
    scale=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_cross_check_random(seed, nc, world, experts, scale):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, 120 * scale, size=(world, experts)).astype(np.int64)
    if pairs.sum() == 0:
        return
    compare(pairs, nc=nc)
