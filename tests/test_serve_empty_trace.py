"""Zero-arrival traces: no NaN may leak into serve reports or exports.

Regression suite for the empty-window percentile bug: ``percentiles``
returns NaN markers on empty input, and those used to flow through
``ServeReport.summary()`` into CSV cells (as the literal string
``nan``) and into any SLO-goodput arithmetic a consumer ran on the
summary.  The ``count == 0`` guard now exports ``None`` (CSV: empty
cell, JSON: null) while every counting metric stays a well-defined
zero.
"""

import csv
import io
import json
import math

from repro import MIXTRAL_8X7B, Comet, ParallelStrategy, h800_node
from repro.serve import ServeScenario, ServeSpec, TraceSpec
from repro.serve.metrics import (
    PERCENTILES,
    RequestRecord,
    ServeReport,
    ServeResultSet,
    percentiles,
)


def _empty_scenario() -> ServeScenario:
    # A replay trace with no arrivals: the deterministic zero-arrival
    # window (an idle replica between traffic bursts).
    return ServeScenario(
        config=MIXTRAL_8X7B,
        cluster=h800_node(),
        strategy=ParallelStrategy(1, 8),
        trace=TraceSpec(kind="replay", arrivals_ms=()),
    )


class TestPercentiles:
    def test_empty_returns_nan_markers(self):
        out = percentiles([])
        assert set(out) == {f"p{q}" for q in PERCENTILES}
        assert all(math.isnan(v) for v in out.values())

    def test_non_empty_is_finite(self):
        out = percentiles([1.0, 2.0, 3.0])
        assert all(math.isfinite(v) for v in out.values())
        assert out["p50"] == 2.0


class TestZeroArrivalTrace:
    def test_run_produces_empty_report(self):
        report = _empty_scenario().run_system(Comet())
        assert report.num_requests == 0
        assert report.makespan_ms == 0.0
        assert report.slo_attainment == 0.0
        assert report.goodput_rps == 0.0
        assert report.output_tokens_per_s == 0.0

    def test_summary_has_no_nan(self):
        report = _empty_scenario().run_system(Comet())
        summary = report.summary()
        for key, value in summary.items():
            if isinstance(value, float):
                assert not math.isnan(value), key
        # count == 0 guard: percentiles export as None, not NaN.
        assert summary["ttft_p50_ms"] is None
        assert summary["tpot_p99_ms"] is None
        assert summary["e2e_p99_ms"] is None
        assert summary["requests"] == 0

    def test_csv_has_no_nan_cells(self):
        results = ServeSpec(
            scenarios=(_empty_scenario(),), systems=("comet",)
        ).run()
        text = results.to_csv()
        assert "nan" not in text.lower()
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows) == 2  # header + the empty report
        by_header = dict(zip(rows[0], rows[1]))
        assert by_header["ttft_p50_ms"] == ""  # empty cell, not "nan"
        assert by_header["requests"] == "0"
        assert by_header["goodput_rps"] == "0.0"

    def test_json_exports_null(self):
        results = ServeSpec(
            scenarios=(_empty_scenario(),), systems=("comet",)
        ).run()
        payload = json.loads(results.to_json())
        (doc,) = payload["reports"]
        assert doc["ttft_p99_ms"] is None
        assert doc["slo_attainment"] == 0.0

    def test_mixed_set_keeps_populated_rows_intact(self):
        """An empty report next to a real one must not perturb the real
        row's cells."""
        busy = ServeScenario(
            config=MIXTRAL_8X7B,
            cluster=h800_node(),
            strategy=ParallelStrategy(1, 8),
            trace=TraceSpec(kind="poisson", rps=10.0, duration_s=2.0),
        )
        spec = ServeSpec(scenarios=(_empty_scenario(), busy), systems=("comet",))
        results = spec.run()
        headers, table = results.to_rows()
        assert len(table) == 2
        empty_row, busy_row = table
        ttft_idx = headers.index("ttft_p50_ms")
        assert empty_row[ttft_idx] is None
        assert busy_row[ttft_idx] > 0.0
        assert "nan" not in results.to_csv().lower()


class TestNanNeverReachesRows:
    def test_synthetic_nan_is_scrubbed(self):
        """Belt-and-braces: even a NaN smuggled into a populated report's
        metrics is scrubbed at the to_rows boundary."""
        record = RequestRecord(
            rid=0, arrival_ms=0.0, first_token_ms=float("nan"),
            completion_ms=10.0, prompt_tokens=8, output_tokens=1,
        )
        report = ServeReport(
            system="X", scenario_label="synthetic", records=(record,),
            timeline=(), slo_ttft_ms=500.0, slo_tpot_ms=75.0,
            horizon_ms=1000.0, max_batch_tokens=1024,
        )
        results = ServeResultSet(reports=(report,))
        _, table = results.to_rows()
        assert all(
            not (isinstance(cell, float) and math.isnan(cell))
            for cell in table[0]
        )
        assert "nan" not in results.to_csv().lower()
