"""Equivalence and monotonicity of the whole-model schedule graph.

The acceptance contract of the graph IR:

* ``overlap_policy="per_layer"`` reproduces the legacy additive totals
  of ``run_model``, ``run_training_step``, and ``StepCostModel.step_us``
  **bit for bit** (``==`` on floats, never ``approx``), across a seeded
  grid of systems x clusters x strategies;
* ``cross_layer`` / ``shortcut`` makespans are strictly lower on
  comm-bound multinode presets;
* the composed per-layer makespan agrees with scheduling the fully
  unrolled flat graph to float associativity;
* the overlap-policy axis flows through the declarative API, serving,
  and the caches without perturbing byte-identical exports.
"""

import pytest

from repro import (
    MIXTRAL_8X7B,
    QWEN2_MOE,
    ExperimentSpec,
    ParallelStrategy,
    Scenario,
    StepCostModel,
    h800_node,
    perf,
    run_model,
    run_training_step,
)
from repro.api.registry import SYSTEM_REGISTRY
from repro.graph import (
    OVERLAP_POLICIES,
    build_forward_graph,
    forward_makespan,
    list_schedule,
    training_makespan,
)
from repro.hw.multinode import h800_pod
from repro.runtime import make_workload
from repro.serve import ServeScenario, ServeSpec, TraceSpec
from repro.systems.base import UnsupportedWorkload

POD = h800_pod(2).effective_cluster()

# Seeded grid: systems x clusters x strategies (the property sweep).
GRID = [
    (system, cluster, strategy, tokens, std, seed)
    for system in ("comet", "tutel", "fastermoe", "megatron-cutlass")
    for cluster, strategy in (
        (h800_node(), ParallelStrategy(1, 8)),
        (h800_node(), ParallelStrategy(2, 4)),
        (POD, ParallelStrategy(2, 8)),
    )
    for tokens, std, seed in ((4096, 0.0, 0), (8192, 0.032, 3))
]
GRID_IDS = [
    f"{s}-{c.name}-{st}-M{t}-std{std}-seed{seed}"
    for s, c, st, t, std, seed in GRID
]


def _workload(cluster, strategy, tokens, std, seed):
    return make_workload(MIXTRAL_8X7B, cluster, strategy, tokens, std, seed)


class TestPerLayerBitwiseEquivalence:
    """The per_layer graph makespan IS the legacy additive total."""

    @pytest.mark.parametrize(
        "system_name,cluster,strategy,tokens,std,seed", GRID, ids=GRID_IDS
    )
    def test_run_model(self, system_name, cluster, strategy, tokens, std, seed):
        system = SYSTEM_REGISTRY.create(system_name)
        workload = _workload(cluster, strategy, tokens, std, seed)
        if not system.supports(workload):
            pytest.skip("unsupported pair")
        legacy = run_model(
            system, MIXTRAL_8X7B, cluster, strategy, tokens,
            imbalance_std=std, seed=seed, workload=workload,
        )
        explicit = run_model(
            SYSTEM_REGISTRY.create(system_name), MIXTRAL_8X7B, cluster,
            strategy, tokens, imbalance_std=std, seed=seed, workload=workload,
            overlap_policy="per_layer",
        )
        # The timing record is unchanged by the refactor...
        assert explicit.total_us == legacy.total_us
        assert explicit.layer_us == legacy.layer_us
        assert explicit.moe_fraction == legacy.moe_fraction
        assert explicit.makespan_us == legacy.total_us
        # ...and the graph composition reproduces it bit for bit.
        phases = system.lower_layer(legacy.moe)
        makespan = forward_makespan(
            phases, legacy.attention_us, legacy.num_layers, "per_layer"
        )
        assert makespan == legacy.total_us

    @pytest.mark.parametrize(
        "system_name,cluster,strategy,tokens,std,seed", GRID, ids=GRID_IDS
    )
    def test_run_training_step(
        self, system_name, cluster, strategy, tokens, std, seed
    ):
        system = SYSTEM_REGISTRY.create(system_name)
        workload = _workload(cluster, strategy, tokens, std, seed)
        if not system.supports(workload):
            pytest.skip("unsupported pair")
        legacy = run_training_step(
            system, MIXTRAL_8X7B, cluster, strategy, tokens,
            imbalance_std=std, seed=seed, workload=workload,
        )
        explicit = run_training_step(
            SYSTEM_REGISTRY.create(system_name), MIXTRAL_8X7B, cluster,
            strategy, tokens, imbalance_std=std, seed=seed, workload=workload,
            overlap_policy="per_layer",
        )
        assert explicit.step_us == legacy.step_us
        assert explicit.layer_us == legacy.layer_us
        assert explicit.moe_fraction == legacy.moe_fraction
        assert explicit.makespan_us == legacy.step_us
        makespan = training_makespan(
            system.lower_layer(legacy.moe_fwd),
            system.backward_variant().lower_layer(legacy.moe_bwd),
            legacy.attention_fwd_us,
            legacy.attention_bwd_us,
            legacy.num_layers,
            legacy.grad_sync_us,
            legacy.optimizer_us,
            "per_layer",
        )
        assert makespan == legacy.step_us

    def test_step_cost_model(self):
        kwargs = dict(
            config=MIXTRAL_8X7B, cluster=POD, strategy=ParallelStrategy(2, 8)
        )
        legacy = StepCostModel(SYSTEM_REGISTRY.create("comet"), **kwargs)
        explicit = StepCostModel(
            SYSTEM_REGISTRY.create("comet"), overlap_policy="per_layer", **kwargs
        )
        for prefill, decode in ((512, 0), (2048, 128), (1, 1), (16384, 512)):
            assert explicit.step_us(prefill, decode) == legacy.step_us(
                prefill, decode
            )

    def test_flat_graph_agrees_with_composition(self):
        """Unrolling all layers and scheduling the flat chain matches the
        exact composition to float associativity."""
        system = SYSTEM_REGISTRY.create("megatron-cutlass")
        workload = _workload(h800_node(), ParallelStrategy(1, 8), 4096, 0.0, 0)
        timing = run_model(
            system, MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 4096,
            workload=workload,
        )
        phases = system.lower_layer(timing.moe)
        composed = forward_makespan(
            phases, timing.attention_us, timing.num_layers, "per_layer"
        )
        flat = list_schedule(
            build_forward_graph(
                phases, timing.attention_us, timing.num_layers, "per_layer"
            )
        ).makespan_us
        assert flat == pytest.approx(composed, rel=1e-12)


class TestCrossLayerStrictlyLower:
    """Comm-bound multinode presets must benefit from both policies."""

    STRATEGY = ParallelStrategy(2, 8)

    @pytest.mark.parametrize(
        "system_name", ("comet", "tutel", "megatron-cutlass", "megatron-te")
    )
    def test_forward(self, system_name):
        def timing(policy):
            return run_model(
                SYSTEM_REGISTRY.create(system_name), MIXTRAL_8X7B, POD,
                self.STRATEGY, 16384, overlap_policy=policy,
            )

        per = timing("per_layer")
        cross = timing("cross_layer")
        short = timing("shortcut")
        assert cross.makespan_us < per.makespan_us
        assert short.makespan_us < per.makespan_us
        assert short.makespan_us <= cross.makespan_us * (1 + 1e-12)
        # The additive view is unchanged; only the makespan moves.
        assert cross.total_us == per.total_us
        assert cross.overlap_speedup > 1.0

    @pytest.mark.parametrize("system_name", ("comet", "megatron-cutlass"))
    def test_training(self, system_name):
        def timing(policy):
            return run_training_step(
                SYSTEM_REGISTRY.create(system_name), MIXTRAL_8X7B, POD,
                self.STRATEGY, 16384, overlap_policy=policy,
            )

        per = timing("per_layer")
        cross = timing("cross_layer")
        assert cross.makespan_us < per.makespan_us
        assert cross.step_us == per.step_us

    def test_serving_step_cost(self):
        kwargs = dict(
            config=MIXTRAL_8X7B, cluster=POD, strategy=self.STRATEGY
        )
        per = StepCostModel(SYSTEM_REGISTRY.create("tutel"), **kwargs)
        cross = StepCostModel(
            SYSTEM_REGISTRY.create("tutel"), overlap_policy="cross_layer",
            **kwargs,
        )
        assert cross.step_us(4096, 256) < per.step_us(4096, 256)

    def test_unsupported_pairs_still_raise(self):
        with pytest.raises(UnsupportedWorkload):
            run_model(
                SYSTEM_REGISTRY.create("fastermoe"), MIXTRAL_8X7B, POD,
                self.STRATEGY, 16384, overlap_policy="cross_layer",
            )

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="overlap_policy"):
            run_model(
                SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, h800_node(),
                ParallelStrategy(1, 8), 4096, overlap_policy="pipelined",
            )


class TestDeclarativeAxis:
    """The overlap-policy axis through ExperimentSpec / ServeSpec."""

    def test_grid_expands_policy_axis(self):
        spec = ExperimentSpec.grid(
            models=MIXTRAL_8X7B, clusters=h800_node(), strategies=(1, 8),
            tokens=2048, overlap_policies=OVERLAP_POLICIES,
            systems=("comet", "megatron-cutlass"),
        )
        assert len(spec.scenarios) == 3
        results = spec.run(level="model")
        assert len(results) == 6
        per = results.filter(overlap_policy="per_layer", system="comet").rows[0]
        cross = results.filter(
            overlap_policy="cross_layer", system="comet"
        ).rows[0]
        assert cross.value_ms < per.value_ms
        # One workload object feeds every policy of the grid point.
        assert per.workload is cross.workload
        headers, rows = results.to_rows()
        assert "policy" in headers
        assert "cross_layer" in results.to_json()

    def test_legacy_exports_unchanged_without_axis(self):
        spec = ExperimentSpec.grid(
            models=MIXTRAL_8X7B, clusters=h800_node(), strategies=(1, 8),
            tokens=2048, systems="comet",
        )
        headers, _ = spec.run(level="model").to_rows()
        assert "policy" not in headers

    def test_parallel_run_byte_identical(self):
        spec = ExperimentSpec.grid(
            models=MIXTRAL_8X7B, clusters=h800_node(), strategies="sweep",
            tokens=2048, overlap_policies=("per_layer", "shortcut"),
            systems=("comet", "tutel"),
        )
        perf.clear_caches()
        serial = spec.run(level="model")
        warm = spec.run(level="model", workers=4)
        assert serial.to_json() == warm.to_json()
        assert perf.GRAPH_CACHE.hits > 0

    def test_scenario_label_carries_policy(self):
        scenario = Scenario(
            config=MIXTRAL_8X7B, cluster=h800_node(),
            strategy=ParallelStrategy(1, 8), tokens=2048,
            overlap_policy="shortcut",
        )
        assert scenario.label.endswith("/shortcut")

    def test_serve_spec_policy_axis(self):
        trace = TraceSpec(kind="poisson", rps=12.0, duration_s=2.0, seed=0)
        spec = ServeSpec.grid(
            models=MIXTRAL_8X7B, clusters=POD,
            strategies=ParallelStrategy(2, 8), traces=trace,
            overlap_policies=("per_layer", "cross_layer"), systems="tutel",
        )
        assert len(spec.scenarios) == 2
        reports = list(spec.run())
        assert len(reports) == 2
        per, cross = reports
        # Cheaper iterations can only improve time to first token.
        assert (
            cross.ttft_percentiles()["p50"] <= per.ttft_percentiles()["p50"]
        )

    def test_serve_scenario_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="overlap_policy"):
            ServeScenario(
                config=MIXTRAL_8X7B, cluster=h800_node(),
                strategy=ParallelStrategy(1, 8), overlap_policy="nope",
            )


class TestGraphCache:
    def test_cached_schedule_is_identical_object_level(self):
        system = SYSTEM_REGISTRY.create("comet")
        workload = _workload(POD, ParallelStrategy(2, 8), 4096, 0.0, 0)
        timing = system.time_layer(workload)
        phases = system.lower_layer(timing)
        perf.clear_caches()
        first = forward_makespan(phases, 100.0, 16, "cross_layer")
        hits_before = perf.GRAPH_CACHE.hits
        second = forward_makespan(phases, 100.0, 16, "cross_layer")
        assert second == first
        assert perf.GRAPH_CACHE.hits == hits_before + 1

    def test_disabled_bypasses_graph_cache(self):
        system = SYSTEM_REGISTRY.create("comet")
        workload = _workload(POD, ParallelStrategy(2, 8), 4096, 0.0, 0)
        phases = system.lower_layer(system.time_layer(workload))
        perf.clear_caches()
        with perf.disabled():
            on = forward_makespan(phases, 100.0, 16, "shortcut")
            assert len(perf.GRAPH_CACHE) == 0
        off = forward_makespan(phases, 100.0, 16, "shortcut")
        assert on == off

    def test_other_model_config_distinct(self):
        """Different layer counts produce different fingerprints."""
        system = SYSTEM_REGISTRY.create("comet")
        workload = _workload(h800_node(), ParallelStrategy(1, 8), 2048, 0.0, 0)
        phases = system.lower_layer(system.time_layer(workload))
        a = forward_makespan(phases, 50.0, MIXTRAL_8X7B.num_layers, "shortcut")
        b = forward_makespan(phases, 50.0, QWEN2_MOE.num_layers, "shortcut")
        assert a != b
