"""Failure/degradation injection: the simulator under hostile conditions.

A systems model earns trust by behaving sensibly when its environment is
degraded: a crippled interconnect must push every system toward
comm-bound behaviour (and shrink COMET's ability to hide), a tiny GPU
must stretch compute, extreme routing skew must not break invariants,
and empty experts must cost nothing.
"""

import dataclasses

import numpy as np
from repro.hw import ClusterSpec, GpuSpec, LinkSpec, h800_node
from repro.hw.presets import H800, NVLINK_H800
from repro.moe import MIXTRAL_8X7B, RoutingPlan
from repro.parallel import ParallelStrategy
from repro.runtime import MoELayerWorkload, make_workload
from repro.systems import Comet, MegatronCutlass


def cluster_with(link: LinkSpec | None = None, gpu: GpuSpec | None = None) -> ClusterSpec:
    base = h800_node()
    return ClusterSpec(
        name="degraded",
        gpu=gpu or base.gpu,
        link=link or base.link,
        world_size=8,
    )


def workload_on(cluster: ClusterSpec, tokens: int = 8192, **kw) -> MoELayerWorkload:
    return make_workload(
        MIXTRAL_8X7B, cluster, ParallelStrategy(1, 8), tokens, **kw
    )


class TestDegradedLink:
    def test_slow_link_slows_everyone(self):
        slow = dataclasses.replace(NVLINK_H800, gbps=5.0, per_block_gbps=0.5)
        fast_w = workload_on(h800_node())
        slow_w = workload_on(cluster_with(link=slow))
        for system_cls in (MegatronCutlass, Comet):
            assert (
                system_cls().time_layer(slow_w).total_us
                > system_cls().time_layer(fast_w).total_us
            )

    def test_comm_bound_regime_shrinks_hiding(self):
        """When communication dwarfs compute, even COMET cannot hide it."""
        crippled = dataclasses.replace(NVLINK_H800, gbps=2.0, per_block_gbps=0.2)
        workload = workload_on(cluster_with(link=crippled))
        timing = Comet().time_layer(workload)
        assert timing.hidden_comm_fraction < 0.6
        assert timing.exposed_comm_us > timing.comp_us

    def test_comet_advantage_narrows_on_slow_fabric(self):
        """The paper's L20 observation, pushed to the extreme."""
        crippled = dataclasses.replace(
            NVLINK_H800, gbps=2.0, per_block_gbps=0.2, a2a_efficiency=0.9
        )
        slow_w = workload_on(cluster_with(link=crippled))
        fast_w = workload_on(h800_node())
        speedup_slow = (
            MegatronCutlass().time_layer(slow_w).total_us
            / Comet().time_layer(slow_w).total_us
        )
        speedup_fast = (
            MegatronCutlass().time_layer(fast_w).total_us
            / Comet().time_layer(fast_w).total_us
        )
        assert speedup_slow < speedup_fast

    def test_high_latency_link(self):
        laggy = dataclasses.replace(NVLINK_H800, latency_us=500.0)
        workload = workload_on(cluster_with(link=laggy))
        timing = Comet().time_layer(workload)
        # Latency is unavoidable: at least one round of it is exposed.
        assert timing.total_us > 500.0


class TestDegradedGpu:
    def test_few_sms_stretch_compute(self):
        tiny = dataclasses.replace(H800, num_sms=16)
        workload = workload_on(cluster_with(gpu=tiny))
        baseline = workload_on(h800_node())
        assert (
            Comet().time_layer(workload).comp_us
            > Comet().time_layer(baseline).comp_us
        )

    def test_division_point_respects_tiny_budget(self):
        tiny = dataclasses.replace(H800, num_sms=16)
        workload = workload_on(cluster_with(gpu=tiny))
        nc = Comet().division_point(workload, layer=1)
        assert 0 < nc < 16

    def test_compute_starved_gpu_hides_everything(self):
        """A very weak GPU makes compute dominate; communication vanishes
        under it."""
        weak = dataclasses.replace(H800, tensor_tflops=30.0)
        workload = workload_on(cluster_with(gpu=weak))
        timing = Comet().time_layer(workload)
        # Only the unavoidable tail (link latency + last column drain)
        # stays exposed.
        assert timing.hidden_comm_fraction > 0.9


class TestExtremeRouting:
    def test_all_tokens_one_expert(self):
        """Worst-case skew: everything lands on a single expert/rank."""
        cluster = h800_node()
        tokens = 4096
        experts = np.zeros((tokens, 2), dtype=np.int64)
        experts[:, 1] = 1  # top-2 must be distinct
        plan = RoutingPlan(
            experts=experts,
            weights=np.full((tokens, 2), 0.5, dtype=np.float32),
            num_experts=8,
        )
        from repro.moe import token_owner_ranks

        workload = MoELayerWorkload(
            config=MIXTRAL_8X7B,
            cluster=cluster,
            strategy=ParallelStrategy(1, 8),
            plan=plan,
            owner=token_owner_ranks(tokens, 8),
        )
        balanced = workload_on(cluster, tokens=tokens)
        for system_cls in (MegatronCutlass, Comet):
            skew_time = system_cls().time_layer(workload).total_us
            balanced_time = system_cls().time_layer(balanced).total_us
            assert skew_time > 1.5 * balanced_time

    def test_empty_experts_cost_nothing_extra(self):
        """Experts that receive no tokens add no GroupGEMM tiles."""
        cluster = h800_node()
        tokens = 1024
        rng = np.random.default_rng(0)
        # Route only to experts 0..3; experts 4..7 stay empty.
        first = rng.integers(0, 4, size=tokens)
        second = (first + 1 + rng.integers(0, 3, size=tokens)) % 4
        experts = np.stack([first, second], axis=1).astype(np.int64)
        plan = RoutingPlan(
            experts=experts,
            weights=np.full((tokens, 2), 0.5, dtype=np.float32),
            num_experts=8,
        )
        from repro.moe import token_owner_ranks

        workload = MoELayerWorkload(
            config=MIXTRAL_8X7B,
            cluster=cluster,
            strategy=ParallelStrategy(1, 8),
            plan=plan,
            owner=token_owner_ranks(tokens, 8),
        )
        timing = Comet().time_layer(workload)
        assert np.isfinite(timing.total_us)
        geometry = workload.geometry
        assert geometry.rows_per_rank[4:].sum() == 0


class TestReplicaFailure:
    """Whole-replica crashes at the fleet layer (repro.fleet).

    The layer-level injections above degrade a device; these kill an
    entire engine replica mid-trace.  The invariants: in-flight
    requests are re-queued through the router and complete exactly
    once, and goodput accounting is conserved — no request is lost,
    duplicated, or completes with different token counts than the
    trace assigned.
    """

    def run_fleet(self, failures):
        from repro import FleetSpec, TraceSpec

        return (
            FleetSpec.grid(
                traces=TraceSpec(kind="poisson", rps=30, duration_s=3, seed=7),
                systems="comet",
                replicas=2,
                routers="least_queue",
                failures=failures,
            )
            .run()
            .reports[0]
        )

    def test_in_flight_requests_requeued_not_lost(self):
        from repro.fleet import FailureEvent

        report = self.run_fleet(
            (FailureEvent(replica=0, fail_ms=700.0, recover_ms=1800.0),)
        )
        rids = [r.rid for r in report.records]
        assert len(rids) == len(set(rids))
        assert report.unserved == 0
        assert report.num_requests == report.offered

    def test_goodput_accounting_conserved_across_crash(self):
        from repro.fleet import FailureEvent

        clean = self.run_fleet(())
        crashed = self.run_fleet(
            (FailureEvent(replica=1, fail_ms=500.0, recover_ms=1500.0),)
        )
        clean_tokens = {r.rid: r.output_tokens for r in clean.records}
        crashed_tokens = {r.rid: r.output_tokens for r in crashed.records}
        assert crashed_tokens == clean_tokens
        # The crash can only delay completions, never accelerate the
        # aggregate: total span is at least as long as the clean run's.
        assert max(r.completion_ms for r in crashed.records) >= max(
            r.completion_ms for r in clean.records
        )

    def test_crash_degrades_latency_tail(self):
        from repro.fleet import FailureEvent

        clean = self.run_fleet(())
        crashed = self.run_fleet((FailureEvent(replica=0, fail_ms=300.0),))
        assert (
            crashed.ttft_percentiles()["p99"] >= clean.ttft_percentiles()["p99"]
        )
