"""Costed KV migration vs. the free-handoff lower bound.

PR 6's disaggregated handoff teleported KV caches between pools.  With a
:class:`MigrationSpec` every prefill→decode handoff pays for its KV
bytes over the inter-replica link (batched per destination), crashed
replicas' requests re-ship their prompt context, and brownout windows
stretch transfers in flight.  The free path must remain a lower bound,
and pricing must never break request conservation.
"""

from repro import (
    BrownoutEvent,
    FailureEvent,
    FaultPlan,
    FleetSpec,
    MigrationSpec,
    TraceSpec,
)
from repro.hw.link import LinkSpec

TRACE = TraceSpec(kind="bursty", rps=60, duration_s=1.5, seed=7)

# A deliberately starved fabric: KV transfer time dominates the handoff.
SLOW_LINK = LinkSpec(name="slow-wan", gbps=1.0, latency_us=500.0)


def run_disagg(migrations, trace=TRACE, faults=None):
    return (
        FleetSpec.grid(
            models="mixtral",
            replicas="1p+2d",
            traces=trace,
            systems="comet",
            migrations=migrations,
            faults=faults,
        )
        .run()
        .reports
    )


def assert_conserved(report):
    rids = [r.rid for r in report.records]
    assert len(rids) == len(set(rids))
    assert report.num_requests == report.offered
    assert report.unserved == 0


class TestHandoffPricing:
    def test_costed_migration_never_beats_free_handoff(self):
        free, costed = run_disagg((None, MigrationSpec()))
        assert_conserved(free)
        assert_conserved(costed)
        assert costed.e2e_percentiles()["p99"] >= free.e2e_percentiles()["p99"]
        assert costed.e2e_percentiles()["p50"] >= free.e2e_percentiles()["p50"]

    def test_link_bottleneck_strictly_slows_completion(self):
        free, costed = run_disagg((None, MigrationSpec(link=SLOW_LINK)))
        assert costed.e2e_percentiles()["p50"] > free.e2e_percentiles()["p50"]
        assert costed.e2e_percentiles()["p99"] > free.e2e_percentiles()["p99"]
        assert_conserved(costed)

    def test_handoff_happens_after_first_token(self):
        # The prefill pool emits the first token before migrating, so
        # TTFT is identical under any link price — only E2E moves.
        free, costed = run_disagg((None, MigrationSpec(link=SLOW_LINK)))
        assert costed.ttft_percentiles() == free.ttft_percentiles()

    def test_slower_link_costs_monotonically_more(self):
        fast, slow = run_disagg(
            (
                MigrationSpec(),  # 400 Gb/s IB default
                MigrationSpec(link=SLOW_LINK),
            )
        )
        assert slow.e2e_percentiles()["p99"] > fast.e2e_percentiles()["p99"]


class TestBrownout:
    def test_brownout_window_stretches_migrations_inside_it(self):
        plan = FaultPlan(brownouts=(
            BrownoutEvent(t0_ms=0.0, t1_ms=10_000.0, mult=8.0),
        ))
        (calm,) = run_disagg(MigrationSpec(link=SLOW_LINK))
        (browned,) = run_disagg(MigrationSpec(link=SLOW_LINK), faults=plan)
        assert browned.e2e_percentiles()["p99"] > calm.e2e_percentiles()["p99"]
        assert_conserved(browned)


class TestCrashContextReship:
    def test_reclaimed_requests_pay_context_shipping(self):
        trace = TraceSpec(kind="poisson", rps=40, duration_s=2, seed=5)
        plan = FaultPlan(crashes=(
            FailureEvent(replica=0, fail_ms=400.0, recover_ms=1200.0),
        ))

        def crash_run(migrations):
            return (
                FleetSpec.grid(
                    traces=trace,
                    replicas=3,
                    routers="least_queue",
                    systems="comet",
                    faults=plan,
                    migrations=migrations,
                )
                .run()
                .reports[0]
            )

        free = crash_run(None)
        costed = crash_run(MigrationSpec(link=SLOW_LINK))
        assert free.failures == costed.failures == 1
        assert_conserved(free)
        assert_conserved(costed)
        # re-dispatch over a starved link delays the bounced requests
        assert (
            costed.e2e_percentiles()["p99"] >= free.e2e_percentiles()["p99"]
        )

    def test_migration_label_lands_in_scenario_label(self):
        (report,) = run_disagg(MigrationSpec())
        assert "kv:" in report.scenario_label


class TestPricingInvariance:
    def test_unified_fleet_without_crashes_ignores_migration(self):
        # No pools, no crashes: nothing ever migrates, so pricing the
        # link must be a byte-level no-op apart from the label.
        trace = TraceSpec(kind="poisson", rps=40, duration_s=1, seed=5)

        def unified(migrations):
            return (
                FleetSpec.grid(
                    traces=trace, replicas=2, systems="comet",
                    migrations=migrations,
                )
                .run()
                .reports[0]
            )

        free, costed = unified(None), unified(MigrationSpec(link=SLOW_LINK))
        assert free.records == costed.records
        assert free.ttft_percentiles() == costed.ttft_percentiles()

    def test_default_pricing_is_small_but_visible(self):
        free, costed = run_disagg((None, MigrationSpec()))
        p50_free = free.e2e_percentiles()["p50"]
        p50_costed = costed.e2e_percentiles()["p50"]
        # a 400 Gb/s fabric prices a handoff in single-digit ms — real
        # enough to register, small enough not to distort the study
        assert p50_costed - p50_free < 0.1 * p50_free
