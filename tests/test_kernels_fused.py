"""Unit tests for the thread-block-specialised fused kernel simulator."""

import numpy as np
import pytest

from repro.hw import h800_node
from repro.kernels.fused import (
    Layer1CommWork,
    simulate_layer0_fused,
    simulate_layer0_vertical,
    simulate_layer1_fused,
    simulate_layer1_vertical,
)
from repro.moe import MIXTRAL_8X7B, balanced_fractions, routing_from_fractions, token_owner_ranks
from repro.parallel import ExpertPlacement, ParallelStrategy
from repro.sim import Tracer
from repro.tensor import build_layer0_schedule, build_layer1_schedule
from repro.tensor.reschedule import POLICY_EXPERT_MAJOR, POLICY_TOKEN_ORDER

CLUSTER = h800_node()
CFG = MIXTRAL_8X7B


def make_rank_workload(tokens=8192, world=8, seed=0, rank=0):
    rng = np.random.default_rng(seed)
    plan = routing_from_fractions(tokens, CFG.topk, balanced_fractions(CFG.num_experts), rng)
    owner = token_owner_ranks(tokens, world)
    placement = ExpertPlacement(ParallelStrategy(1, world), CFG.num_experts)
    return placement.rank_workload(plan, owner, rank)


def layer0_schedule(policy="sorted_by_source", **kw):
    wl = make_rank_workload(**kw)
    return build_layer0_schedule(wl.pairs_by_src_expert, kw.get("rank", 0), policy=policy)


def run_layer0(schedule, nc, **kw):
    return simulate_layer0_fused(
        CLUSTER.gpu,
        CLUSTER.link,
        schedule,
        token_bytes=CFG.token_bytes,
        k=CFG.hidden_size,
        cols=CFG.ffn_size,
        nc=nc,
        **kw,
    )


def layer1_setup(tokens=8192, world=8):
    wl = make_rank_workload(tokens=tokens, world=world)
    schedule = build_layer1_schedule(wl.expert_rows, cols=CFG.hidden_size)
    rows = wl.total_rows
    comm = Layer1CommWork(
        reduce_rows=rows,
        local_rows=rows // world,
        remote_bulk_rows=0,
        remote_fine_rows=rows - rows // world,
        row_bytes=CFG.token_bytes,
    )
    return schedule, comm


def run_layer1(schedule, comm, nc):
    return simulate_layer1_fused(
        CLUSTER.gpu,
        CLUSTER.link,
        schedule,
        comm,
        k=CFG.ffn_size,
        cols=CFG.hidden_size,
        nc=nc,
    )


class TestLayer0Fused:
    def test_duration_bounded_below_by_both_sides(self):
        schedule = layer0_schedule()
        result = run_layer0(schedule, nc=16)
        assert result.duration_us >= result.comp_standalone_us - 1e-9
        assert result.duration_us >= result.comm_standalone_us - 1e-9

    def test_block_budget(self):
        schedule = layer0_schedule()
        result = run_layer0(schedule, nc=20)
        assert result.nc + result.np_blocks == CLUSTER.gpu.num_sms

    def test_more_comm_blocks_speed_comm(self):
        schedule = layer0_schedule()
        r8 = run_layer0(schedule, nc=8)
        r24 = run_layer0(schedule, nc=24)
        assert r24.comm_standalone_us < r8.comm_standalone_us

    def test_more_comm_blocks_slow_compute(self):
        schedule = layer0_schedule()
        r8 = run_layer0(schedule, nc=8)
        r64 = run_layer0(schedule, nc=64)
        assert r64.comp_standalone_us > r8.comp_standalone_us

    def test_u_shaped_division_curve(self):
        """Too few comm blocks starve compute of data, too many starve it
        of SMs: the optimum is interior (paper Figure 8)."""
        schedule = layer0_schedule(tokens=16384)
        durations = {nc: run_layer0(schedule, nc).duration_us for nc in (2, 24, 100)}
        assert durations[24] < durations[2]
        assert durations[24] < durations[100]

    def test_sorted_schedule_at_least_as_good(self):
        sorted_sched = layer0_schedule()
        shuffled = layer0_schedule(policy=POLICY_TOKEN_ORDER)
        r_sorted = run_layer0(sorted_sched, nc=12)
        r_shuffled = run_layer0(shuffled, nc=12)
        assert r_sorted.duration_us <= r_shuffled.duration_us + 1e-6

    def test_hidden_fraction_in_unit_interval(self):
        result = run_layer0(layer0_schedule(), nc=24)
        assert 0.0 <= result.hidden_comm_fraction <= 1.0

    def test_no_remote_data_runs_without_comm_blocks(self):
        wl = make_rank_workload(world=1)
        schedule = build_layer0_schedule(wl.pairs_by_src_expert, 0)
        assert schedule.num_remote == 0
        result = run_layer0(schedule, nc=0)
        assert result.comm_standalone_us == 0.0
        assert result.hidden_comm_fraction == 1.0

    def test_remote_data_requires_comm_blocks(self):
        with pytest.raises(ValueError):
            run_layer0(layer0_schedule(), nc=0)

    def test_nc_exhausting_sms_rejected(self):
        with pytest.raises(ValueError):
            run_layer0(layer0_schedule(), nc=CLUSTER.gpu.num_sms)

    def test_tracer_records_lanes(self):
        tracer = Tracer()
        run_layer0(layer0_schedule(), nc=16, tracer=tracer, lane="rank0")
        assert "rank0/comp" in tracer.lanes()
        assert "rank0/comm" in tracer.lanes()


class TestLayer1Fused:
    def test_duration_bounds(self):
        schedule, comm = layer1_setup()
        result = run_layer1(schedule, comm, nc=24)
        assert result.duration_us >= result.comp_standalone_us - 1e-9

    def test_u_shape(self):
        schedule, comm = layer1_setup(tokens=16384)
        d = {nc: run_layer1(schedule, comm, nc).duration_us for nc in (2, 24, 100)}
        assert d[24] < d[2] and d[24] < d[100]

    def test_column_major_beats_expert_major(self):
        """Rescheduling (Figure 6) lets the reducer start earlier, so the
        fused kernel finishes sooner for the same work."""
        wl = make_rank_workload(tokens=16384)
        comm = Layer1CommWork(
            reduce_rows=wl.total_rows,
            local_rows=wl.total_rows // 8,
            remote_bulk_rows=0,
            remote_fine_rows=wl.total_rows - wl.total_rows // 8,
            row_bytes=CFG.token_bytes,
        )
        cm = build_layer1_schedule(wl.expert_rows, cols=CFG.hidden_size)
        em = build_layer1_schedule(
            wl.expert_rows, cols=CFG.hidden_size, policy=POLICY_EXPERT_MAJOR
        )
        r_cm = run_layer1(cm, comm, nc=24)
        r_em = run_layer1(em, comm, nc=24)
        assert r_cm.duration_us < r_em.duration_us

    def test_empty_schedule(self):
        schedule = build_layer1_schedule(np.array([0, 0]), cols=CFG.hidden_size)
        comm = Layer1CommWork(0, 0, 0, 0, CFG.token_bytes)
        result = run_layer1(schedule, comm, nc=4)
        assert result.duration_us == 0.0

    def test_bulk_traffic_cheaper_than_fine(self):
        """The same bytes cost less as reduce-scatter chunks than as
        token-granular messages — the mechanism behind Figure 8's optimal
        nc moving with parallelism."""
        schedule, _ = layer1_setup(tokens=16384)
        rows = int(schedule.row_tiles_per_expert.sum() * 128)
        bulk = Layer1CommWork(rows, 0, rows, 0, CFG.token_bytes)
        fine = Layer1CommWork(rows, 0, 0, rows, CFG.token_bytes)
        r_bulk = run_layer1(schedule, bulk, nc=16)
        r_fine = run_layer1(schedule, fine, nc=16)
        assert r_bulk.comm_standalone_us < r_fine.comm_standalone_us

    def test_invalid_comm_work(self):
        with pytest.raises(ValueError):
            Layer1CommWork(-1, 0, 0, 0, 128)
        with pytest.raises(ValueError):
            Layer1CommWork(0, 0, 0, 0, 0)

    def test_tracer(self):
        tracer = Tracer()
        schedule, comm = layer1_setup()
        simulate_layer1_fused(
            CLUSTER.gpu, CLUSTER.link, schedule, comm,
            k=CFG.ffn_size, cols=CFG.hidden_size, nc=16,
            tracer=tracer, lane="r0",
        )
        assert "r0/comm" in tracer.lanes() and "r0/comp" in tracer.lanes()


class TestVerticalFusionAblation:
    def test_layer0_specialized_beats_vertical(self):
        """Thread-block specialisation (§3.2.1) must beat folding the
        remote reads into the GEMM pipeline."""
        schedule = layer0_schedule(tokens=16384)
        specialized = run_layer0(schedule, nc=24)
        vertical = simulate_layer0_vertical(
            CLUSTER.gpu, CLUSTER.link, schedule,
            token_bytes=CFG.token_bytes, k=CFG.hidden_size, cols=CFG.ffn_size,
        )
        assert specialized.duration_us < vertical.duration_us

    def test_layer1_specialized_beats_vertical(self):
        schedule, comm = layer1_setup(tokens=16384)
        specialized = run_layer1(schedule, comm, nc=24)
        vertical = simulate_layer1_vertical(
            CLUSTER.gpu, CLUSTER.link, schedule, comm,
            k=CFG.ffn_size, cols=CFG.hidden_size,
        )
        assert specialized.duration_us < vertical.duration_us

    def test_vertical_uses_all_sms(self):
        schedule = layer0_schedule()
        vertical = simulate_layer0_vertical(
            CLUSTER.gpu, CLUSTER.link, schedule,
            token_bytes=CFG.token_bytes, k=CFG.hidden_size, cols=CFG.ffn_size,
        )
        assert vertical.np_blocks == CLUSTER.gpu.num_sms
        assert vertical.nc == 0
