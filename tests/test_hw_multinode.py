"""Tests for the two-tier multi-node topology model."""

import pytest

from repro.hw import h800_node
from repro.hw.multinode import IB_400G, TwoTierCluster, h800_pod
from repro.hw.presets import H800, NVLINK_H800


class TestTopology:
    def test_pod_shape(self):
        pod = h800_pod(4)
        assert pod.world_size == 32
        assert pod.node_of(0) == 0
        assert pod.node_of(8) == 1
        assert pod.same_node(0, 7)
        assert not pod.same_node(7, 8)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            h800_pod(2).node_of(16)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            TwoTierCluster("x", H800, NVLINK_H800, IB_400G, nodes=0, gpus_per_node=8)

    def test_fabric_sanity_check(self):
        with pytest.raises(ValueError):
            TwoTierCluster(
                "x", H800, intra_link=IB_400G, inter_link=NVLINK_H800,
                nodes=2, gpus_per_node=8,
            )

    def test_uniform_locality(self):
        # 2 nodes x 8: 7 of 15 remote peers are intra-node.
        assert h800_pod(2).uniform_locality() == pytest.approx(7 / 15)
        assert h800_pod(1).uniform_locality() == pytest.approx(1.0)


class TestEffectiveCluster:
    def test_locality_one_recovers_nvlink(self):
        effective = h800_pod(2).effective_cluster(locality=1.0)
        assert effective.link.gbps == pytest.approx(NVLINK_H800.gbps)
        assert effective.link.latency_us == pytest.approx(NVLINK_H800.latency_us)

    def test_locality_zero_recovers_fabric(self):
        effective = h800_pod(2).effective_cluster(locality=0.0)
        assert effective.link.gbps == pytest.approx(IB_400G.gbps)

    def test_blend_between_tiers(self):
        effective = h800_pod(2).effective_cluster()
        assert IB_400G.gbps < effective.link.gbps < NVLINK_H800.gbps
        assert (
            NVLINK_H800.latency_us
            < effective.link.latency_us
            < IB_400G.latency_us
        )

    def test_more_nodes_lower_effective_bandwidth(self):
        """With more nodes, less traffic stays on NVLink."""
        two = h800_pod(2).effective_cluster().link.gbps
        eight = h800_pod(8).effective_cluster().link.gbps
        assert eight < two

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            h800_pod(2).effective_cluster(locality=1.5)

    def test_single_node_slice(self):
        node = h800_pod(4).single_node()
        assert node.world_size == 8
        assert node.link.gbps == NVLINK_H800.gbps


class TestMultiNodeExecution:
    """The whole system stack runs unchanged on the flattened pod."""

    def test_comet_still_wins_across_nodes(self):
        from repro.moe import MIXTRAL_8X7B
        from repro.parallel import ParallelStrategy
        from repro.runtime import make_workload
        from repro.systems import Comet, MegatronCutlass

        pod = h800_pod(2)
        cluster = pod.effective_cluster()
        workload = make_workload(
            MIXTRAL_8X7B.with_experts(16, 2), cluster,
            ParallelStrategy(1, 16), total_tokens=16384,
        )
        comet = Comet().time_layer(workload)
        megatron = MegatronCutlass().time_layer(workload)
        assert comet.total_us < megatron.total_us

    def test_cross_node_layer_slower_than_single_node(self):
        """Same per-GPU workload, slower fabric: the pod's MoE layer must
        take longer than the single node's."""
        from repro.moe import MIXTRAL_8X7B
        from repro.parallel import ParallelStrategy
        from repro.runtime import make_workload
        from repro.systems import Comet

        pod = h800_pod(2)
        pod_workload = make_workload(
            MIXTRAL_8X7B.with_experts(16, 2), pod.effective_cluster(),
            ParallelStrategy(1, 16), total_tokens=32768,
        )
        node_workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8),
            total_tokens=16384,
        )
        assert (
            Comet().time_layer(pod_workload).total_us
            > Comet().time_layer(node_workload).total_us
        )
