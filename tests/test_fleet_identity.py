"""Fleet equivalence and edge cases.

The anchor guarantees of `repro.fleet`: a 1-replica round-robin fleet is
*bit-identical* (``==``) to the bare serving engine (the decomposed path
delegates to it), a 1-replica co-simulation reproduces the same records
(the DES path is a faithful multi-replica generalisation), every router
is seeded-deterministic across runs, and the degenerate fleets —
zero-arrival traces and fully-failed fleets — export None-not-NaN
metrics per the serve-layer guards.
"""

import json

import pytest

from repro import FleetSpec, ServeSpec, TraceSpec, perf
from repro.fleet import FailureEvent, FleetScenario, ReplicaSpec
from repro.fleet.router import ROUTER_REGISTRY
from repro.hw.presets import h800_node
from repro.moe.config import MIXTRAL_8X7B
from repro.parallel.strategy import ParallelStrategy

SMALL_TRACE = TraceSpec(kind="poisson", rps=20, duration_s=3, seed=0)
BURSTY = TraceSpec(kind="bursty", rps=60, duration_s=4, seed=2)


def fleet_run(trace=SMALL_TRACE, systems="comet", **kwargs):
    return FleetSpec.grid(traces=trace, systems=systems, **kwargs).run()


class TestSingleReplicaBitIdentity:
    def test_round_robin_records_match_bare_serve_engine(self):
        # The acceptance criterion: same trace, same system — the fleet
        # wrapper must not perturb a single bit of the serving records.
        serve = ServeSpec.grid(traces=SMALL_TRACE, systems="comet").run()
        fleet = fleet_run()
        assert fleet.reports[0].records == serve.reports[0].records

    def test_round_robin_fleet_uses_fast_serve_loop(self):
        # The decomposed path must go through ContinuousBatchingScheduler,
        # so disabling the fast loop changes the code path but not one
        # byte of output.
        fast = fleet_run()
        with perf.configure(fast_serve_loop=False):
            slow = fleet_run()
        assert fast.reports == slow.reports

    def test_state_dependent_cosim_matches_bare_engine_single_replica(self):
        # With one replica, least-queue routing has no choices to make:
        # the co-simulated DES must reproduce the bare engine's records
        # exactly — the correctness anchor for the whole co-sim path.
        serve = ServeSpec.grid(traces=SMALL_TRACE, systems="comet").run()
        cosim = fleet_run(routers="least_queue")
        assert cosim.reports[0].records == serve.reports[0].records

    def test_goodput_matches_bare_serve(self):
        serve = ServeSpec.grid(traces=SMALL_TRACE, systems="comet").run()
        fleet = fleet_run()
        assert fleet.reports[0].goodput_rps == serve.reports[0].goodput_rps
        assert fleet.reports[0].slo_attainment == serve.reports[0].slo_attainment


class TestDeterminism:
    @pytest.mark.parametrize("router", sorted(ROUTER_REGISTRY.names()))
    def test_bit_identical_across_runs(self, router):
        first = fleet_run(trace=BURSTY, replicas=4, routers=router)
        second = fleet_run(trace=BURSTY, replicas=4, routers=router)
        assert first.reports == second.reports
        assert first.to_json() == second.to_json()

    def test_determinism_with_autoscaler_and_failures(self):
        from repro.fleet import AutoscalerSpec

        kwargs = dict(
            trace=BURSTY,
            replicas=3,
            autoscalers=AutoscalerSpec(min_replicas=1, warmup_ms=500.0),
            failures=(FailureEvent(replica=0, fail_ms=800.0, recover_ms=2000.0),),
        )
        assert fleet_run(**kwargs).reports == fleet_run(**kwargs).reports


class TestZeroArrivalFleet:
    EMPTY = TraceSpec(kind="replay", arrivals_ms=())

    def test_empty_trace_serves_nothing_and_exports_none(self):
        results = fleet_run(trace=self.EMPTY, replicas=2, routers="least_queue")
        report = results.reports[0]
        assert report.num_requests == 0 and report.unserved == 0
        summary = report.summary()
        assert summary["ttft_p50_ms"] is None
        assert summary["goodput_rps"] == 0.0
        # Strict JSON: None percentiles become null, never a NaN token.
        text = results.to_json()
        assert "NaN" not in text
        assert json.loads(text)["reports"][0]["ttft_p50_ms"] is None

    def test_empty_trace_rows_have_no_nan_cells(self):
        results = fleet_run(trace=self.EMPTY)
        _, rows = results.to_rows()
        for row in rows:
            for value in row:
                assert not (isinstance(value, float) and value != value)


class TestAllReplicasFailed:
    def test_run_terminates_with_everything_unserved(self):
        plan = tuple(
            FailureEvent(replica=i, fail_ms=1.0) for i in range(2)
        )
        results = fleet_run(replicas=2, failures=plan)
        report = results.reports[0]
        assert report.num_requests == 0
        assert report.unserved == report.offered > 0
        assert report.failures == 2 and report.recoveries == 0
        assert report.summary()["ttft_p50_ms"] is None
        json.loads(results.to_json())  # strict-parseable

    def test_recovery_after_total_outage_drains_backlog(self):
        plan = (
            FailureEvent(replica=0, fail_ms=1.0, recover_ms=1500.0),
            FailureEvent(replica=1, fail_ms=1.0, recover_ms=2000.0),
        )
        report = fleet_run(replicas=2, failures=plan).reports[0]
        assert report.unserved == 0
        assert report.num_requests == report.offered
        # Nothing finished during the outage window.
        assert all(r.first_token_ms >= 1500.0 for r in report.records)


class TestScenarioValidation:
    def make(self, **kwargs):
        cluster = h800_node()
        defaults = dict(
            config=MIXTRAL_8X7B,
            replicas=(
                ReplicaSpec(
                    cluster=cluster,
                    strategy=ParallelStrategy(tp_size=1, ep_size=8),
                    count=2,
                ),
            ),
        )
        defaults.update(kwargs)
        return FleetScenario(**defaults)

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            self.make(router="random")

    def test_failure_event_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="targets replica"):
            self.make(failures=(FailureEvent(replica=5, fail_ms=10.0),))

    def test_overlapping_failure_windows_rejected(self):
        with pytest.raises(ValueError, match="overlapping failure"):
            self.make(
                failures=(
                    FailureEvent(replica=0, fail_ms=10.0, recover_ms=50.0),
                    FailureEvent(replica=0, fail_ms=30.0),
                )
            )

    def test_recover_before_fail_rejected(self):
        with pytest.raises(ValueError, match="must exceed"):
            FailureEvent(replica=0, fail_ms=100.0, recover_ms=50.0)
