"""Tests for COMET's fabric-contention (joint-arrival) mode."""

import pytest

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet


def workload(tokens=8192, std=0.0, seed=0):
    return make_workload(
        MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), tokens,
        imbalance_std=std, seed=seed,
    )


class TestFabricMode:
    def test_balanced_close_to_independent_model(self):
        """Symmetric traffic: contention changes (almost) nothing."""
        w = workload(std=0.0)
        independent = Comet().time_layer(w).total_us
        contended = Comet(fabric_contention=True).time_layer(w).total_us
        assert contended == pytest.approx(independent, rel=0.05)

    def test_contention_never_speeds_up(self):
        """Sharing egress can only delay arrivals."""
        for std, seed in ((0.0, 0), (0.032, 1), (0.05, 2)):
            w = workload(std=std, seed=seed)
            independent = Comet().time_layer(w)
            contended = Comet(fabric_contention=True).time_layer(w)
            assert (
                contended.total_us >= independent.total_us - 1e-6
            ), (std, seed)

    def test_skew_widens_the_gap(self):
        """Under imbalance the hot rank's egress is oversubscribed, so the
        contention model diverges more from the independent one."""
        gap_balanced = self._gap(workload(std=0.0, seed=3))
        gap_skewed = self._gap(workload(std=0.05, seed=3))
        assert gap_skewed >= gap_balanced - 1e-9

    @staticmethod
    def _gap(w) -> float:
        independent = Comet().time_layer(w).total_us
        contended = Comet(fabric_contention=True).time_layer(w).total_us
        return (contended - independent) / independent

    def test_backward_variant_preserves_mode(self):
        system = Comet(fabric_contention=True)
        assert system.backward_variant().fabric_contention is True

    def test_single_gpu_skips_fabric(self):
        w = make_workload(
            MIXTRAL_8X7B, h800_node(1), ParallelStrategy(1, 1), 1024
        )
        timing = Comet(fabric_contention=True).time_layer(w)
        assert timing.comm_us == 0.0
