"""Router policies: registry contents, unit behaviour, and the headline
load-balancing result.

The benchmark-grade claim lives here too: on a *heterogeneous* fleet
(one replica degraded by a compute straggler) power-of-two-choices
strictly beats round-robin on p99 TTFT under bursty load.  On a
homogeneous fleet round-robin's perfect count-balance is near-optimal,
which is why the acceptance scenario degrades one replica.
"""

import pytest

from repro import FleetSpec, StragglerSpec, TraceSpec
from repro.fleet import ReplicaSpec
from repro.fleet.router import (
    ROUTER_REGISTRY,
    LeastQueue,
    PowerOfTwo,
    RoundRobin,
    SessionAffinity,
    make_router,
)
from repro.hw.presets import h800_node
from repro.parallel.strategy import ParallelStrategy


class FakeView:
    def __init__(self, index, queue_depth=0, running=0, backlog_tokens=0):
        self.index = index
        self.queue_depth = queue_depth
        self.running = running
        self.backlog_tokens = backlog_tokens


class FakeRequest:
    def __init__(self, rid):
        self.rid = rid


class TestRegistry:
    def test_contents(self):
        assert set(ROUTER_REGISTRY.names()) == {
            "round_robin",
            "session_affinity",
            "least_queue",
            "power_of_two",
        }

    def test_make_router_unknown_name(self):
        with pytest.raises(Exception):
            make_router("nope", 4)

    def test_state_dependence_flags(self):
        # The decomposed fast path is only legal for routers whose
        # decision ignores live replica state.
        assert not RoundRobin(4).state_dependent
        assert not SessionAffinity(4).state_dependent
        assert LeastQueue(4).state_dependent
        assert PowerOfTwo(4).state_dependent


class TestRoundRobin:
    def test_cycles_over_candidates(self):
        router = RoundRobin(3)
        views = [FakeView(i) for i in range(3)]
        picks = [router.choose(FakeRequest(i), views, 0.0).index for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_candidates(self):
        router = RoundRobin(3)
        views = [FakeView(0), FakeView(2)]  # replica 1 unhealthy
        picks = {router.choose(FakeRequest(i), views, 0.0).index for i in range(4)}
        assert picks == {0, 2}


class TestSessionAffinity:
    def test_same_session_sticks(self):
        router = SessionAffinity(4)
        views = [FakeView(i) for i in range(4)]
        sessions = 4 * 4
        first = router.choose(FakeRequest(7), views, 0.0).index
        again = router.choose(FakeRequest(7 + sessions), views, 0.0).index
        assert first == again

    def test_spreads_across_replicas(self):
        router = SessionAffinity(4)
        views = [FakeView(i) for i in range(4)]
        picks = {router.choose(FakeRequest(r), views, 0.0).index for r in range(64)}
        assert len(picks) > 1


class TestLeastQueue:
    def test_prefers_emptiest(self):
        router = LeastQueue(3)
        views = [
            FakeView(0, queue_depth=5, running=2),
            FakeView(1, queue_depth=0, running=1),
            FakeView(2, queue_depth=3, running=0),
        ]
        assert router.choose(FakeRequest(0), views, 0.0).index == 1

    def test_backlog_tokens_break_count_ties(self):
        router = LeastQueue(2)
        views = [
            FakeView(0, queue_depth=1, backlog_tokens=900),
            FakeView(1, queue_depth=1, backlog_tokens=100),
        ]
        assert router.choose(FakeRequest(0), views, 0.0).index == 1


class TestPowerOfTwo:
    def test_picks_lighter_of_two_probes(self):
        router = PowerOfTwo(2, seed=0)
        views = [
            FakeView(0, backlog_tokens=10_000),
            FakeView(1, backlog_tokens=10),
        ]
        # With only two candidates both are always probed: the light
        # one must win every time.
        for rid in range(16):
            assert router.choose(FakeRequest(rid), views, 0.0).index == 1

    def test_seeded_reproducibility(self):
        views = [FakeView(i, backlog_tokens=i * 100) for i in range(6)]
        a = PowerOfTwo(6, seed=3)
        b = PowerOfTwo(6, seed=3)
        for rid in range(32):
            assert (
                a.choose(FakeRequest(rid), views, 0.0).index
                == b.choose(FakeRequest(rid), views, 0.0).index
            )


HETERO_TRACE = TraceSpec(kind="bursty", rps=300, duration_s=8, seed=3)


def heterogeneous_pool():
    """3 healthy replicas + 1 with a 2.5x compute straggler on rank 0."""
    cluster = h800_node()
    strategy = ParallelStrategy(tp_size=1, ep_size=8)
    return (
        ReplicaSpec(cluster=cluster, strategy=strategy, count=3),
        ReplicaSpec(
            cluster=cluster,
            strategy=strategy,
            count=1,
            stragglers=StragglerSpec.slow_rank(8, rank=0, compute_mult=2.5),
        ),
    )


class TestP2CBeatsRoundRobinHeterogeneous:
    def test_p99_ttft_strictly_lower(self):
        results = FleetSpec.grid(
            replicas=heterogeneous_pool(),
            routers=("round_robin", "power_of_two"),
            traces=HETERO_TRACE,
            systems="comet",
        ).run(workers=2)
        rr = results.get("comet", router="round_robin")
        p2c = results.get("comet", router="power_of_two")
        # Both fleets serve the entire trace...
        assert rr.unserved == 0 and p2c.unserved == 0
        # ...but state-aware routing steers load away from the straggler.
        assert p2c.ttft_percentiles()["p99"] < rr.ttft_percentiles()["p99"]
        assert p2c.goodput_rps >= rr.goodput_rps
