"""Zero-perturbation guarantee: observation never changes a result.

The tentpole acceptance test of the observability layer — seeded model,
serve, and fleet grids export byte-identical JSON with observability
enabled vs. disabled, and the trace builders never mutate the reports
they render.
"""

from repro import ExperimentSpec, obs
from repro.fleet import FailureEvent, FleetSpec
from repro.obs import (
    trace_fleet_report,
    trace_graph_schedule,
    trace_serve_report,
)
from repro.serve import ServeSpec, TraceSpec


def _experiment():
    return ExperimentSpec.grid(
        tokens=4096, systems=("comet", "megatron-cutlass")
    )


def _serve():
    return ServeSpec.grid(
        traces=TraceSpec(kind="poisson", rps=30, duration_s=1.0, seed=7),
        systems="comet",
    )


def _fleet():
    return FleetSpec.grid(
        replicas=2,
        traces=TraceSpec(kind="bursty", rps=40, duration_s=1.0, seed=7),
        failures=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=700.0),),
        systems="comet",
    )


class TestBitIdentity:
    def test_experiment_identical_with_obs_on_and_off(self):
        with obs.enabled():
            on = _experiment().run().to_json()
        with obs.disabled():
            off = _experiment().run().to_json()
        assert on == off

    def test_serve_identical_with_obs_on_and_off(self):
        with obs.enabled():
            on = _serve().run().to_json()
        with obs.disabled():
            off = _serve().run().to_json()
        assert on == off

    def test_fleet_identical_with_obs_on_and_off(self):
        with obs.enabled():
            results_on = _fleet().run()
        with obs.disabled():
            results_off = _fleet().run()
        assert results_on.to_json() == results_off.to_json()
        # full report equality, including the always-collected dispatch
        # log and per-replica timelines the trace builders consume
        assert results_on.reports == results_off.reports

    def test_tracing_a_report_does_not_mutate_it(self):
        results = _fleet().run()
        before = results.reports[0]
        trace_fleet_report(results.reports[0])
        assert results.reports[0] == before
        serve_results = _serve().run()
        serve_before = serve_results.reports[0]
        trace_serve_report(serve_results.reports[0])
        assert serve_results.reports[0] == serve_before


class TestDisabledEmission:
    def test_builders_emit_nothing_when_disabled(self):
        serve_report = _serve().run().reports[0]
        fleet_report = _fleet().run().reports[0]
        with obs.disabled():
            for tracer in (
                trace_serve_report(serve_report),
                trace_fleet_report(fleet_report),
            ):
                assert tracer.events == [] and tracer.counters == []
                assert tracer.instants == [] and tracer.flows == []

    def test_graph_builder_emits_nothing_when_disabled(self):
        from repro import MIXTRAL_8X7B, Comet, ParallelStrategy, h800_node
        from repro.graph.lower import forward_schedule
        from repro.runtime import run_model

        system = Comet()
        cluster = h800_node()
        strategy = ParallelStrategy(tp_size=1, ep_size=cluster.world_size)
        timing = run_model(
            system, MIXTRAL_8X7B, cluster, strategy, total_tokens=4096
        )
        schedule = forward_schedule(
            system.lower_layer(timing.moe),
            timing.attention_us,
            timing.num_layers,
            "per_layer",
        )
        with obs.disabled():
            tracer = trace_graph_schedule(schedule)
            assert tracer.events == [] and tracer.instants == []
        with obs.enabled():
            tracer = trace_graph_schedule(schedule)
            assert len(tracer.events) == len(schedule.graph.nodes)

    def test_flag_state_round_trips(self):
        assert obs.is_enabled()
        previous = obs.set_enabled(False)
        assert previous is True and not obs.is_enabled()
        obs.set_enabled(True)
        with obs.disabled():
            assert not obs.is_enabled()
            with obs.enabled():
                assert obs.is_enabled()
            assert not obs.is_enabled()
        assert obs.is_enabled()
