"""Property test: analytic scheduler == DES executor on random graphs.

Hypothesis-driven seeded generation of multi-rank :class:`ScheduleGraph`
instances — random node kinds, compute/comm streams across several
ranks, random dependency edges (cross-rank edges included), zero-duration
nodes, and single-rank degenerate graphs — asserting the analytic list
scheduler and the discrete-event reference executor agree **exactly**
(``==`` on every finish float, never approximately) and report identical
per-rank makespans.  This is the multi-rank extension of the
hand-enumerated cross-checks in ``test_graph_des_crosscheck.py``.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    COMM,
    COMPUTE,
    NodeKind,
    ScheduleGraph,
    Stream,
    des_schedule,
    list_schedule,
    rank_makespans,
)

KINDS = tuple(NodeKind)


def _random_graph(
    seed: int, num_nodes: int, num_ranks: int, zero_fraction: float
) -> ScheduleGraph:
    """A seeded random DAG over ``num_ranks`` stream pairs.

    Edges only point backwards (the IR's construction invariant), are
    sampled across ranks as often as within them, and a configurable
    fraction of nodes carries a zero duration — the degenerate case that
    exercises the same-timestamp cascade draining in both executors.
    """
    rng = random.Random(seed)
    graph = ScheduleGraph()
    for node_id in range(num_nodes):
        rank = rng.randrange(num_ranks)
        stream = Stream(COMM if rng.random() < 0.4 else COMPUTE, rank)
        if rng.random() < zero_fraction:
            duration = 0.0
        else:
            # A mix of magnitudes, including ties, to provoke identical
            # timestamps on different streams.
            duration = rng.choice((1.0, 1.0, 2.5, 7.0, rng.uniform(0.1, 50.0)))
        num_deps = rng.randint(0, min(3, node_id))
        deps = rng.sample(range(node_id), num_deps) if num_deps else ()
        graph.add(
            rng.choice(KINDS), duration, stream, deps=deps,
            layer=node_id % 4,
        )
    return graph


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=1, max_value=60),
    num_ranks=st.sampled_from((1, 2, 3, 4, 8)),
    zero_fraction=st.sampled_from((0.0, 0.2, 0.5)),
)
@settings(max_examples=120, deadline=None)
def test_analytic_equals_des_exactly(seed, num_nodes, num_ranks, zero_fraction):
    graph = _random_graph(seed, num_nodes, num_ranks, zero_fraction)
    analytic = list_schedule(graph)
    finish, makespan = des_schedule(graph)
    assert finish == analytic.finish_us
    assert makespan == analytic.makespan_us
    assert rank_makespans(graph, finish) == analytic.rank_makespans()
    # Sanity invariants of the schedule itself.
    assert all(f >= s for s, f in zip(analytic.start_us, analytic.finish_us))
    assert analytic.imbalance_us() >= 0.0
    spans = analytic.rank_makespans()
    assert analytic.makespan_us == (max(spans.values()) if spans else 0.0)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_all_zero_duration_graphs(seed):
    """Graphs made entirely of zero-duration nodes finish at t=0 in both
    executors (pure cascade settling, no wall clock)."""
    graph = _random_graph(seed, 30, 4, 1.0)
    assert all(node.duration_us == 0.0 for node in graph)
    analytic = list_schedule(graph)
    finish, makespan = des_schedule(graph)
    assert finish == analytic.finish_us
    assert makespan == 0.0 == analytic.makespan_us
    assert analytic.imbalance_us() == 0.0


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_nodes=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_single_rank_degenerate(seed, num_nodes):
    """Single-rank random graphs: the multi-rank machinery reduces to the
    historical two-stream case and still matches the DES exactly."""
    graph = _random_graph(seed, num_nodes, 1, 0.25)
    assert graph.ranks() == (0,)
    analytic = list_schedule(graph)
    finish, makespan = des_schedule(graph)
    assert finish == analytic.finish_us
    assert makespan == analytic.makespan_us
    assert set(analytic.rank_makespans()) <= {0}
