"""The claim validator must pass every claim on the calibrated model."""

from repro.bench.validation import Claim, format_claims, validate_all


class TestValidation:
    def test_all_claims_pass_quick(self):
        claims = validate_all(quick=True)
        failed = [c for c in claims if not c.passed]
        assert not failed, format_claims(claims)

    def test_claim_coverage(self):
        """Every evaluation artefact of the paper is represented."""
        claims = validate_all(quick=True)
        sources = {c.source for c in claims}
        for figure in ("Fig. 1a", "Fig. 8", "Fig. 10", "Fig. 11", "Fig. 12",
                       "Fig. 13", "Fig. 14 left", "Fig. 14 right"):
            assert any(figure in s for s in sources), figure
        assert any("Table 3" in s for s in sources)

    def test_format_lists_verdicts(self):
        claims = [
            Claim("a", "Fig. 1", "desc", True, "ok"),
            Claim("b", "Fig. 2", "desc", False, "bad"),
        ]
        text = format_claims(claims)
        assert "PASS" in text and "FAIL" in text
        assert "1/2 claims reproduced" in text
