"""Unit tests for expert weights and the reference forward pass."""

import numpy as np
import pytest

from repro.moe import (
    ExpertWeights,
    RoutingPlan,
    TopKGate,
    balanced_fractions,
    reference_moe_forward,
    routing_from_fractions,
    silu,
)


class TestSilu:
    def test_zero(self):
        assert silu(np.array([0.0]))[0] == 0.0

    def test_large_positive_is_identity(self):
        np.testing.assert_allclose(silu(np.array([50.0])), [50.0], rtol=1e-6)

    def test_large_negative_is_zero(self):
        np.testing.assert_allclose(silu(np.array([-50.0])), [0.0], atol=1e-6)


class TestExpertWeights:
    def test_init_shapes(self):
        w = ExpertWeights.init(4, hidden_size=8, ffn_size=16)
        assert w.w0.shape == (4, 8, 16)
        assert w.w1.shape == (4, 16, 8)
        assert w.num_experts == 4
        assert w.hidden_size == 8
        assert w.ffn_size == 16

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            ExpertWeights(w0=np.zeros((2, 8, 16)), w1=np.zeros((2, 16, 9)))

    def test_tp_shard_shapes(self):
        w = ExpertWeights.init(2, 8, 16)
        shard = w.tp_shard(1, 4)
        assert shard.w0.shape == (2, 8, 4)
        assert shard.w1.shape == (2, 4, 8)

    def test_tp_shards_reconstruct_output(self):
        """Column-parallel layer0 + row-parallel layer1 partial sums must
        reconstruct the unsharded expert output (Megatron MLP sharding)."""
        rng = np.random.default_rng(0)
        w = ExpertWeights.init(1, 8, 16, rng)
        x = rng.normal(size=(5, 8)).astype(np.float32)
        full = silu(x @ w.w0[0]) @ w.w1[0]
        partial_sum = np.zeros_like(full)
        for tp_rank in range(4):
            shard = w.tp_shard(tp_rank, 4)
            partial_sum += silu(x @ shard.w0[0]) @ shard.w1[0]
        np.testing.assert_allclose(partial_sum, full, rtol=1e-4, atol=1e-5)

    def test_tp_shard_invalid_rank(self):
        w = ExpertWeights.init(1, 8, 16)
        with pytest.raises(ValueError):
            w.tp_shard(4, 4)

    def test_tp_shard_indivisible(self):
        w = ExpertWeights.init(1, 8, 15)
        with pytest.raises(ValueError):
            w.tp_shard(0, 4)

    def test_select_experts(self):
        w = ExpertWeights.init(4, 8, 16)
        sub = w.select([1, 3])
        np.testing.assert_array_equal(sub.w0[0], w.w0[1])
        np.testing.assert_array_equal(sub.w1[1], w.w1[3])


class TestReferenceForward:
    def setup_method(self):
        self.rng = np.random.default_rng(42)
        self.weights = ExpertWeights.init(4, hidden_size=16, ffn_size=24, rng=self.rng)
        self.x = self.rng.normal(size=(32, 16)).astype(np.float32)
        self.plan = routing_from_fractions(32, 2, balanced_fractions(4), self.rng)

    def test_output_shape(self):
        out = reference_moe_forward(self.x, self.plan, self.weights)
        assert out.shape == (32, 16)

    def test_single_expert_matches_direct_ffn(self):
        plan = RoutingPlan(
            experts=np.zeros((32, 1), dtype=int),
            weights=np.ones((32, 1), dtype=np.float32),
            num_experts=4,
        )
        out = reference_moe_forward(self.x, plan, self.weights)
        direct = silu(self.x @ self.weights.w0[0]) @ self.weights.w1[0]
        np.testing.assert_allclose(out, direct, rtol=1e-5, atol=1e-6)

    def test_combine_weights_scale_output(self):
        """Doubling a token's combine weights doubles its output."""
        plan = self.plan
        out1 = reference_moe_forward(self.x, plan, self.weights)
        scaled = RoutingPlan(
            experts=plan.experts,
            weights=plan.weights * 2.0,
            num_experts=plan.num_experts,
        )
        out2 = reference_moe_forward(self.x, scaled, self.weights)
        np.testing.assert_allclose(out2, 2.0 * out1, rtol=1e-5)

    def test_topk_output_is_weighted_sum(self):
        out = reference_moe_forward(self.x, self.plan, self.weights)
        token = 5
        expected = np.zeros(16, dtype=np.float32)
        for slot in range(self.plan.topk):
            e = self.plan.experts[token, slot]
            y = silu(self.x[token : token + 1] @ self.weights.w0[e]) @ self.weights.w1[e]
            expected += self.plan.weights[token, slot] * y[0]
        np.testing.assert_allclose(out[token], expected, rtol=1e-4, atol=1e-5)

    def test_gate_integration(self):
        gate = TopKGate(16, 4, 2, rng=self.rng)
        gate_out = gate(self.x)
        plan = RoutingPlan.from_gate(gate_out, 4)
        out = reference_moe_forward(self.x, plan, self.weights)
        assert np.isfinite(out).all()

    def test_unused_expert_is_fine(self):
        plan = RoutingPlan(
            experts=np.zeros((8, 1), dtype=int),
            weights=np.ones((8, 1), dtype=np.float32),
            num_experts=4,
        )
        out = reference_moe_forward(self.x[:8], plan, self.weights)
        assert out.shape == (8, 16)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reference_moe_forward(self.x[:8], self.plan, self.weights)

    def test_hidden_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reference_moe_forward(
                self.x[:, :8], self.plan, self.weights
            )

    def test_expert_count_mismatch_rejected(self):
        other = ExpertWeights.init(8, 16, 24)
        with pytest.raises(ValueError):
            reference_moe_forward(self.x, self.plan, other)
