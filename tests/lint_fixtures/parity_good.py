"""Good: the fast path declares its arbitrating slow path, which exists."""


def slow_reference(values):
    return sorted(values)


# parity: slow_reference
def fast_sorted(values):
    return sorted(values)
