"""Good: one shared predicate gates the optional column everywhere."""


class SteadyResultSet:
    def __init__(self, rows):
        self.rows = rows

    def _has_extra(self) -> bool:
        return bool(self.rows)

    def to_rows(self):
        extra = self._has_extra()
        return [dict(row, extra=extra) for row in self.rows]

    def to_csv(self):
        return "\n".join(str(row) for row in self.to_rows())

    def to_json(self):
        return {"rows": list(self.rows), "extra": self._has_extra()}
