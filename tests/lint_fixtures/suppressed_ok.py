"""Suppressions with justifications: findings recorded, run stays clean."""

import time


def trailing_stamp() -> float:
    return time.time()  # repro-lint: disable=determinism -- fixture: the wall clock is the point here


def standalone_stamp() -> float:
    # repro-lint: disable=determinism -- fixture: exercises standalone comments
    return time.time()
