"""Bad: choices omit registered trace keys and list a phantom one."""


def build_parser(parser):
    parser.add_argument(
        "--trace", default="poisson", choices=("poisson", "wavelet"),
    )
    return parser
