"""A suppression without a justification is itself a finding."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=determinism
