"""Bad: 'gamma' never reaches the digest; 'ghost' is a stale exclusion."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LeakyKey:
    alpha: float
    gamma: float

    _fingerprint_exclude = ("ghost",)

    def fingerprint(self) -> str:
        return str(self.alpha)
