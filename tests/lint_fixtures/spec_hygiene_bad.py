"""Bad: unfrozen, mutable/lambda defaults, nested definition.

Parsed only — several of these would raise at import time.
"""

from dataclasses import dataclass, field


@dataclass
class ThawedSpec:
    count: int = 0


@dataclass(frozen=False)
class UnfrozenSpec:
    count: int = 0


@dataclass(frozen=True)
class SloppySpec:
    items: list = []
    pick: object = lambda: 1
    table: dict = field(default_factory=lambda: {})


def make_inner():
    @dataclass(frozen=True)
    class InnerSpec:
        x: int = 0

    return InnerSpec
