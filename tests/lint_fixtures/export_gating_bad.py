"""Bad: to_json re-derives the optional column inline and drifts."""


class DriftingResultSet:
    def __init__(self, rows):
        self.rows = rows

    def _has_extra(self) -> bool:
        return bool(self.rows)

    def to_rows(self):
        extra = self._has_extra()
        return [dict(row, extra=extra) for row in self.rows]

    def to_json(self):
        if any("extra" in row for row in self.rows):
            return {"rows": list(self.rows), "extra": True}
        return {"rows": list(self.rows)}
