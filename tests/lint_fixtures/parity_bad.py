"""Bad: one fast path is unmarked, the other names a missing reference."""


def fast_unmarked(values):
    return list(values)


# parity: ghost_module.missing_reference
def fast_orphaned(values):
    return list(values)
