"""Good: the choices literal matches the trace registry exactly."""


def build_parser(parser):
    parser.add_argument(
        "--trace", default="poisson",
        choices=("poisson", "bursty", "diurnal", "replay"),
    )
    return parser
