"""Good: every field reaches the digest or the documented exclusion."""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class CompleteKey:
    alpha: float
    beta: float
    label: str = ""

    _fingerprint_exclude = ("label",)

    def fingerprint(self) -> str:
        digest = hashlib.sha1()
        digest.update(f"{self.alpha}|{self.beta}".encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class WholeObjectKey:
    gamma: float
    delta: float

    def fingerprint(self) -> str:
        return repr(self)
