"""Good: frozen, immutable defaults, module top level."""

from dataclasses import dataclass, field


def _default_tags() -> tuple:
    return ()


@dataclass(frozen=True)
class TidySpec:
    retries: int = 3
    tags: tuple = field(default_factory=_default_tags)
