"""Bad: wall clocks, ambient entropy, unseeded RNGs, bare-set iteration."""

import os
import random
import time

import numpy as np
from numpy.random import default_rng


def stamp() -> float:
    return time.time()


def entropy() -> bytes:
    return os.urandom(8)


def draw() -> float:
    jitter = random.random()
    noise = np.random.rand()
    rng = default_rng()
    unseeded = random.Random()
    total = 0.0
    for value in {3, 1, 2}:
        total += value
    return jitter + noise + rng.random() + unseeded.random() + total
