"""Good: seeded generators, sorted set iteration."""

import random

import numpy as np


def draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    total = 0.0
    for value in sorted({3, 1, 2}):
        total += value
    return rng.random() + local.random() + total
