"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


class TestEnvironmentClock:
    def test_initial_time(self):
        assert Environment().now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_deadline_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_deadline_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_queue(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        env = Environment()
        fired = []

        def proc():
            yield env.timeout(3.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [3.5]

    def test_timeout_carries_value(self):
        env = Environment()
        seen = []

        def proc():
            value = yield env.timeout(1.0, value="payload")
            seen.append(value)

        env.process(proc())
        env.run()
        assert seen == ["payload"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(0.0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_timeouts_fire_in_order(self):
        env = Environment()
        order = []

        def proc(delay, tag):
            yield env.timeout(delay)
            order.append(tag)

        env.process(proc(3, "c"))
        env.process(proc(1, "a"))
        env.process(proc(2, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_equal_time_fifo_tiebreak(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            env.process(proc(tag))
        env.run()
        assert order == list(range(5))


class TestEvents:
    def test_manual_succeed(self):
        env = Environment()
        event = env.event()
        results = []

        def waiter():
            value = yield event
            results.append(value)

        def trigger():
            yield env.timeout(2.0)
            event.succeed(42)

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert results == [42]

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_propagates_into_process(self):
        env = Environment()
        event = env.event()
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        def trigger():
            yield env.timeout(1.0)
            event.fail(RuntimeError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_surfaces(self):
        env = Environment()
        event = env.event()
        event.fail(RuntimeError("nobody listening"))
        with pytest.raises(RuntimeError, match="nobody listening"):
            env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            return "result"

        def parent(collected):
            value = yield env.process(child())
            collected.append(value)

        collected = []
        env.process(parent(collected))
        env.run()
        assert collected == ["result"]

    def test_run_until_process(self):
        env = Environment()

        def proc():
            yield env.timeout(4.0)
            return 7

        assert env.run(until=env.process(proc())) == 7
        assert env.now == 4.0

    def test_process_exception_propagates_to_parent(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise ValueError("child died")

        def parent(caught):
            try:
                yield env.process(child())
            except ValueError as exc:
                caught.append(str(exc))

        caught = []
        env.process(parent(caught))
        env.run()
        assert caught == ["child died"]

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        stamps = []

        def proc():
            for _ in range(3):
                yield env.timeout(2.0)
                stamps.append(env.now)

        env.process(proc())
        env.run()
        assert stamps == [2.0, 4.0, 6.0]

    def test_is_alive(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        causes = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                causes.append((env.now, interrupt.cause))

        def attacker(target):
            yield env.timeout(3.0)
            target.interrupt("preempted")

        target = env.process(victim())
        env.process(attacker(target))
        env.run()
        assert causes == [(3.0, "preempted")]

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        p = env.process(proc())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def attacker(target):
            yield env.timeout(2.0)
            target.interrupt()

        target = env.process(victim())
        env.process(attacker(target))
        env.run()
        assert log == [3.0]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        done = []

        def proc():
            yield AllOf(env, [env.timeout(1), env.timeout(5), env.timeout(3)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [5.0]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc():
            yield AnyOf(env, [env.timeout(4), env.timeout(2)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [2.0]

    def test_and_operator(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(1) & env.timeout(2)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [2.0]

    def test_or_operator(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(1) | env.timeout(2)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [1.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        done = []

        def proc():
            yield AllOf(env, [])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_all_of_collects_values(self):
        env = Environment()
        seen = {}

        def proc():
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            values = yield AllOf(env, [t1, t2])
            seen.update({v for v in values.values()} and values)

        env.process(proc())
        env.run()
        assert sorted(seen.values()) == ["a", "b"]


class TestInterruptWhileBlockedOnConditions:
    """Interrupting a process that is waiting on AllOf / AnyOf."""

    def test_interrupt_while_blocked_on_all_of(self):
        env = Environment()
        log = []

        def victim():
            t1 = env.timeout(10, value="a")
            t2 = env.timeout(20, value="b")
            try:
                yield AllOf(env, [t1, t2])
                log.append("completed")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, env.now))

        def attacker(proc):
            yield env.timeout(5)
            proc.interrupt("stop waiting")

        proc = env.process(victim())
        env.process(attacker(proc))
        env.run()
        assert log == [("interrupted", "stop waiting", 5.0)]

    def test_interrupt_while_blocked_on_any_of(self):
        env = Environment()
        log = []

        def victim():
            try:
                yield AnyOf(env, [env.timeout(10), env.timeout(20)])
                log.append("completed")
            except Interrupt as exc:
                log.append(("interrupted", exc.cause, env.now))

        def attacker(proc):
            yield env.timeout(3)
            proc.interrupt()

        proc = env.process(victim())
        env.process(attacker(proc))
        env.run()
        assert log == [("interrupted", None, 3.0)]

    def test_condition_firing_after_interrupt_does_not_resume_victim(self):
        # The constituent timeouts still fire at t=10/t=20; the detached
        # condition must not resume (or crash) the interrupted process.
        env = Environment()
        resumptions = []

        def victim():
            t1 = env.timeout(10)
            t2 = env.timeout(20)
            try:
                yield AllOf(env, [t1, t2])
            except Interrupt:
                resumptions.append(("interrupt", env.now))
                yield env.timeout(100)  # waits past both timeouts
                resumptions.append(("woke", env.now))

        def attacker(proc):
            yield env.timeout(5)
            proc.interrupt()

        proc = env.process(victim())
        env.process(attacker(proc))
        env.run()
        assert resumptions == [("interrupt", 5.0), ("woke", 105.0)]
        assert env.now == 105.0

    def test_interrupted_process_can_rewait_on_remaining_events(self):
        # After the interrupt the victim re-waits on one of the original
        # constituent events, which must still deliver its value.
        env = Environment()
        log = []

        def victim():
            t1 = env.timeout(10, value="late")
            try:
                yield AnyOf(env, [t1, env.timeout(30)])
            except Interrupt:
                value = yield t1
                log.append((value, env.now))

        def attacker(proc):
            yield env.timeout(2)
            proc.interrupt()

        proc = env.process(victim())
        env.process(attacker(proc))
        env.run()
        assert log == [("late", 10.0)]
