"""Unit tests for the schedule-graph IR, scheduler, and lowering."""

import pytest

from repro.graph import (
    COMM,
    COMPUTE,
    OVERLAP_POLICIES,
    LayerPhase,
    NodeKind,
    ScheduleGraph,
    Stream,
    build_forward_graph,
    build_moe_chain,
    build_training_graph,
    check_policy,
    list_schedule,
)
from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import ALL_SYSTEMS, Comet, MegatronCutlass

COMPUTE0 = Stream(COMPUTE, 0)
COMM0 = Stream(COMM, 0)

PHASES = (
    LayerPhase(NodeKind.GATE, 10.0),
    LayerPhase(NodeKind.DISPATCH, 7.0, comm=True),
    LayerPhase(NodeKind.EXPERT, 20.0),
    LayerPhase(NodeKind.ACTIVATION, 3.0),
    LayerPhase(NodeKind.EXPERT, 15.0),
    LayerPhase(NodeKind.COMBINE, 9.0, comm=True),
    LayerPhase(NodeKind.HOST, 2.0),
)
PHASE_SUM = 66.0


class TestScheduleGraph:
    def test_edges_must_point_backward(self):
        graph = ScheduleGraph()
        with pytest.raises(ValueError):
            graph.add(NodeKind.GATE, 1.0, COMPUTE0, deps=(0,))

    def test_negative_duration_rejected(self):
        graph = ScheduleGraph()
        with pytest.raises(ValueError):
            graph.add(NodeKind.GATE, -1.0, COMPUTE0)

    def test_bad_stream_kind_rejected(self):
        with pytest.raises(ValueError):
            Stream("dma", 0)

    def test_fingerprint_sensitivity(self):
        def build(dur, dep):
            graph = ScheduleGraph()
            graph.add(NodeKind.GATE, 1.0, COMPUTE0)
            graph.add(NodeKind.EXPERT, 2.0, COMPUTE0)
            graph.add(NodeKind.COMBINE, dur, COMM0, deps=(dep,))
            return graph

        base = build(3.0, 1)
        assert base.fingerprint() == build(3.0, 1).fingerprint()
        assert base.fingerprint() != build(3.0000000001, 1).fingerprint()
        assert base.fingerprint() != build(3.0, 0).fingerprint()

    def test_streams_in_first_use_order(self):
        graph = ScheduleGraph()
        graph.add(NodeKind.COMBINE, 1.0, COMM0)
        graph.add(NodeKind.GATE, 1.0, COMPUTE0)
        assert graph.streams() == (COMM0, COMPUTE0)


class TestListSchedule:
    def test_empty_graph(self):
        assert list_schedule(ScheduleGraph()).makespan_us == 0.0

    def test_chain_accumulates_in_order(self):
        graph = build_moe_chain(PHASES)
        schedule = list_schedule(graph)
        assert schedule.makespan_us == PHASE_SUM
        # Finishes are the left-associated running sums.
        running, expected = 0.0, []
        for phase in PHASES:
            running += phase.duration_us
            expected.append(running)
        assert list(schedule.finish_us) == expected

    def test_independent_streams_overlap(self):
        graph = ScheduleGraph()
        graph.add(NodeKind.EXPERT, 10.0, COMPUTE0)
        graph.add(NodeKind.COMBINE, 8.0, COMM0)
        assert list_schedule(graph).makespan_us == 10.0

    def test_lowest_id_wins_tie(self):
        graph = ScheduleGraph()
        first = graph.add(NodeKind.EXPERT, 5.0, COMPUTE0)
        second = graph.add(NodeKind.EXPERT, 1.0, COMPUTE0)
        schedule = list_schedule(graph)
        assert schedule.start_us[first] == 0.0
        assert schedule.start_us[second] == 5.0

    def test_dependency_gates_start(self):
        graph = ScheduleGraph()
        a = graph.add(NodeKind.EXPERT, 4.0, COMPUTE0)
        b = graph.add(NodeKind.COMBINE, 3.0, COMM0, deps=(a,))
        schedule = list_schedule(graph)
        assert schedule.start_us[b] == 4.0
        assert schedule.makespan_us == 7.0

    def test_cycle_detection(self):
        graph = ScheduleGraph()
        a = graph.add(NodeKind.EXPERT, 1.0, COMPUTE0)
        b = graph.add(NodeKind.EXPERT, 1.0, COMPUTE0, deps=(a,))
        graph.preds[a] = (b,)  # force a cycle behind the builder's back
        with pytest.raises(ValueError, match="cycle"):
            list_schedule(graph)

    def test_critical_path_spans_makespan(self):
        graph = build_forward_graph(PHASES, 12.0, 4, "cross_layer")
        schedule = list_schedule(graph)
        path = schedule.critical_path()
        assert path, "critical path must not be empty"
        assert schedule.start_us[path[0].id] == 0.0
        assert (
            schedule.start_us[path[-1].id] + path[-1].duration_us
            == schedule.makespan_us
        )
        # Consecutive path nodes are gap-free.
        for before, after in zip(path, path[1:]):
            assert (
                schedule.start_us[before.id] + before.duration_us
                == schedule.start_us[after.id]
            )

    def test_overlap_saved_accounting(self):
        graph = build_forward_graph(PHASES, 12.0, 4, "shortcut")
        schedule = list_schedule(graph)
        assert schedule.overlap_saved_us() == pytest.approx(
            graph.total_work_us - schedule.makespan_us
        )
        assert schedule.overlap_saved_us() > 0


class TestPolicies:
    def test_check_policy(self):
        for policy in OVERLAP_POLICIES:
            assert check_policy(policy) == policy
        with pytest.raises(ValueError, match="overlap_policy"):
            check_policy("pipelined")

    def test_per_layer_is_serial(self):
        graph = build_forward_graph(PHASES, 12.0, 6, "per_layer")
        schedule = list_schedule(graph)
        assert schedule.makespan_us == pytest.approx(6 * (12.0 + PHASE_SUM))
        assert schedule.overlap_saved_us() == pytest.approx(0.0, abs=1e-9)

    def test_policy_ordering(self):
        per = list_schedule(build_forward_graph(PHASES, 12.0, 8, "per_layer"))
        cross = list_schedule(build_forward_graph(PHASES, 12.0, 8, "cross_layer"))
        short = list_schedule(build_forward_graph(PHASES, 12.0, 8, "shortcut"))
        assert cross.makespan_us < per.makespan_us
        assert short.makespan_us <= cross.makespan_us

    def test_cross_layer_hides_combine_behind_attention(self):
        """Every layer's combine runs concurrently with its host epilogue
        (and, at boundaries, the next attention): the serial
        combine+host+attention tail collapses to max(combine, host +
        attention) per boundary, and the final layer keeps only
        max(combine, host)."""
        per = list_schedule(build_forward_graph(PHASES, 12.0, 4, "per_layer"))
        cross = list_schedule(build_forward_graph(PHASES, 12.0, 4, "cross_layer"))
        combine, host, attention = 9.0, 2.0, 12.0
        saved_boundary = combine + host + attention - max(
            combine, host + attention
        )
        saved_tail = combine + host - max(combine, host)
        assert per.makespan_us - cross.makespan_us == pytest.approx(
            3 * saved_boundary + saved_tail, rel=1e-12
        )

    def test_no_combine_degenerates_to_per_layer(self):
        phases = tuple(p for p in PHASES if p.kind is not NodeKind.COMBINE)
        per = list_schedule(build_forward_graph(phases, 12.0, 4, "per_layer"))
        cross = list_schedule(build_forward_graph(phases, 12.0, 4, "cross_layer"))
        assert per.makespan_us == cross.makespan_us

    def test_training_graph_has_step_tail(self):
        graph = build_training_graph(
            PHASES, PHASES, 12.0, 24.0, 4, 50.0, 30.0, "per_layer"
        )
        kinds = [node.kind for node in graph.nodes]
        assert kinds.count(NodeKind.GRAD_SYNC) == 1
        assert kinds.count(NodeKind.OPTIMIZER) == 1

    def test_training_bucketed_grad_sync(self):
        graph = build_training_graph(
            PHASES, PHASES, 12.0, 24.0, 4, 50.0, 30.0, "cross_layer"
        )
        chunks = [n for n in graph.nodes if n.kind is NodeKind.GRAD_SYNC]
        assert len(chunks) == 4
        assert sum(c.duration_us for c in chunks) == pytest.approx(50.0)
        assert all(c.stream == COMM0 for c in chunks)

    def test_invalid_num_layers(self):
        with pytest.raises(ValueError):
            build_forward_graph(PHASES, 12.0, 0, "per_layer")


class TestLowerLayer:
    WORKLOAD = make_workload(
        MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 8192
    )

    @pytest.mark.parametrize("system_cls", ALL_SYSTEMS, ids=lambda c: c.slug)
    def test_chain_reproduces_layer_total_bitwise(self, system_cls):
        """A serial chain of the lowered phases is the layer wall clock."""
        system = system_cls()
        if not system.supports(self.WORKLOAD):
            pytest.skip("system does not support the workload")
        timing = system.time_layer(self.WORKLOAD)
        phases = system.lower_layer(timing)
        makespan = list_schedule(build_moe_chain(phases)).makespan_us
        assert makespan == timing.total_us  # exact, not approx

    def test_phase_kinds_and_streams(self):
        timing = MegatronCutlass().time_layer(self.WORKLOAD)
        phases = MegatronCutlass().lower_layer(timing)
        kinds = [p.kind for p in phases]
        assert kinds == [
            NodeKind.GATE,
            NodeKind.DISPATCH,
            NodeKind.EXPERT,
            NodeKind.ACTIVATION,
            NodeKind.EXPERT,
            NodeKind.COMBINE,
            NodeKind.HOST,
        ]
        assert [p.comm for p in phases] == [
            False, True, False, False, False, True, False,
        ]
        assert phases[1].duration_us == timing.exposed_layer0_comm_us
        assert phases[5].duration_us == timing.exposed_layer1_comm_us

    def test_comet_exposes_less_than_megatron(self):
        """COMET's lowered comm phases carry the exposed remainders, so
        cross-layer policies compound on intra-layer hiding."""
        comet = Comet().lower_layer(Comet().time_layer(self.WORKLOAD))
        megatron = MegatronCutlass().lower_layer(
            MegatronCutlass().time_layer(self.WORKLOAD)
        )
        comm = lambda phases: sum(p.duration_us for p in phases if p.comm)
        assert comm(comet) < comm(megatron)
