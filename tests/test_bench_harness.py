"""Smoke tests for the figure harnesses at reduced scale.

The full-scale assertions live in ``benchmarks/``; these verify the
harness plumbing (shapes, formatting, derived statistics) quickly enough
for the unit-test suite.
"""

import pytest

from repro.bench import (
    fig01_time_breakdown,
    fig08_nc_sweep,
    fig10_single_layer,
    fig11_breakdown,
    fig12_parallelism,
    fig13_moe_params,
    fig14_imbalance,
    table3_memory,
)


class TestFig01:
    def test_rows_and_stats(self):
        result = fig01_time_breakdown(seq_lens=(2048,))
        assert len(result.rows) == 3  # one per paper model
        assert 0 < result.mean_comm_fraction < 1
        assert "Figure 1(a)" in result.format()


class TestFig08:
    def test_small_sweep(self):
        result = fig08_nc_sweep(token_lengths=(4096,), variant_step=16)
        assert len(result.curves) == 4  # one per parallelism
        for curve in result.curves:
            assert curve.best_nc in curve.durations_us
        assert result.best_nc(1, 8, 4096) > 0
        with pytest.raises(KeyError):
            result.best_nc(1, 8, 999)


class TestFig10:
    def test_structure(self):
        result = fig10_single_layer(
            token_lengths=(2048,), expert_configs=((8, 2),)
        )
        assert len(result.rows) == 1
        row = result.rows[0]
        assert set(row.durations_ms) == {
            "Megatron-TE", "Megatron-Cutlass", "FasterMoE", "Tutel", "Comet",
        }
        assert result.mean_speedup > 1.0
        low, high = result.speedup_range
        assert low <= result.mean_speedup <= high


class TestFig11:
    def test_breakdown_segments(self):
        result = fig11_breakdown(tokens=4096)
        assert result.hidden_fraction("Comet") > result.hidden_fraction("Tutel")
        assert "hidden%" in result.format()


class TestFig12:
    def test_strategies_covered(self):
        result = fig12_parallelism(tokens=2048)
        assert set(result.durations_ms) == {
            "TP1xEP8", "TP2xEP4", "TP4xEP2", "TP8xEP1",
        }
        assert "Figure 12" in result.format()


class TestFig13:
    def test_speedups_positive(self):
        result = fig13_moe_params(
            tokens=4096, expert_counts=(8,), topks=(1, 2)
        )
        assert len(result.rows) == 2
        assert all(s > 0 for s in result.speedups)


class TestFig14:
    def test_imbalance_keys(self):
        result = fig14_imbalance(tokens=2048, stds=(0.0, 0.05))
        assert set(result.durations_ms) == {0.0, 0.05}


class TestTable3:
    def test_custom_lengths(self):
        result = table3_memory(token_lengths=(1024,))
        assert result.buffers_mb[("Mixtral-8x7B", 1024)] == pytest.approx(8.0)

    def test_format_lists_models(self):
        text = table3_memory().format()
        for model in ("Mixtral-8x7B", "Qwen2-MoE-2.7B", "Phi-3.5-MoE"):
            assert model in text
