"""Tests for the explicit distributed executor.

Two invariant families: the distributed result equals the single-box
reference for every strategy, and the bytes actually moved match the
traffic matrices the timing layer prices.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import (
    ExpertWeights,
    balanced_fractions,
    imbalanced_fractions,
    reference_moe_forward,
    routing_from_fractions,
    token_owner_ranks,
)
from repro.parallel import ExpertPlacement, ParallelStrategy
from repro.parallel.distributed import DistributedMoE, MessageLog

HIDDEN, FFN = 24, 32


def build_case(tp=1, ep=4, experts=8, tokens=64, topk=2, std=0.0, seed=0):
    rng = np.random.default_rng(seed)
    if std > 0:
        fractions = imbalanced_fractions(experts, std, rng)
    else:
        fractions = balanced_fractions(experts)
    plan = routing_from_fractions(tokens, topk, fractions, rng)
    strategy = ParallelStrategy(tp_size=tp, ep_size=ep)
    owner = token_owner_ranks(tokens, strategy.world_size)
    weights = ExpertWeights.init(experts, HIDDEN, FFN, rng)
    x = rng.normal(size=(tokens, HIDDEN)).astype(np.float32)
    return strategy, plan, owner, weights, x


class TestNumericalEquivalence:
    @pytest.mark.parametrize("tp,ep", [(1, 1), (1, 4), (2, 2), (4, 1), (2, 4), (1, 8)])
    def test_matches_reference(self, tp, ep):
        strategy, plan, owner, weights, x = build_case(tp=tp, ep=ep)
        system = DistributedMoE(strategy, weights)
        out = system.forward(x, plan, owner)
        reference = reference_moe_forward(x, plan, weights)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_matches_reference_imbalanced(self):
        strategy, plan, owner, weights, x = build_case(tp=2, ep=2, std=0.05, seed=3)
        out = DistributedMoE(strategy, weights).forward(x, plan, owner)
        reference = reference_moe_forward(x, plan, weights)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_topk_one(self):
        strategy, plan, owner, weights, x = build_case(topk=1)
        out = DistributedMoE(strategy, weights).forward(x, plan, owner)
        reference = reference_moe_forward(x, plan, weights)
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_repeated_forward_is_stateless(self):
        strategy, plan, owner, weights, x = build_case()
        system = DistributedMoE(strategy, weights)
        out1 = system.forward(x, plan, owner)
        out2 = system.forward(x, plan, owner)
        np.testing.assert_array_equal(out1, out2)


class TestTrafficAccounting:
    def test_dispatch_matches_pair_matrix(self):
        """The executor's dispatch bytes must equal the placement's
        pair-copy matrix times the wire width — the quantity every cost
        model in repro.systems consumes."""
        strategy, plan, owner, weights, x = build_case(tp=2, ep=2)
        system = DistributedMoE(strategy, weights)
        system.forward(x, plan, owner)
        placement = ExpertPlacement(strategy, weights.num_experts)
        expected = placement.pair_matrix(plan, owner) * (HIDDEN * system.dtype_bytes)
        np.testing.assert_array_equal(system.dispatch_matrix(), expected)

    def test_dispatch_matches_pair_matrix_pure_ep(self):
        strategy, plan, owner, weights, x = build_case(tp=1, ep=8)
        system = DistributedMoE(strategy, weights)
        system.forward(x, plan, owner)
        placement = ExpertPlacement(strategy, weights.num_experts)
        expected = placement.pair_matrix(plan, owner) * (HIDDEN * system.dtype_bytes)
        np.testing.assert_array_equal(system.dispatch_matrix(), expected)

    def test_combine_rows_match_unique_tokens(self):
        """Combine sends one partial row per (token, hosting rank) — the
        unique-token counts WorkloadGeometry reports."""
        from repro.hw import h800_node
        from repro.runtime import make_workload
        from repro.moe.config import MoEConfig

        config = MoEConfig("tiny", 1, 8, 2, hidden_size=HIDDEN, ffn_size=FFN)
        workload = make_workload(
            config, h800_node(4), ParallelStrategy(2, 2), 64, seed=0
        )
        weights = ExpertWeights.init(8, HIDDEN, FFN, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(64, HIDDEN)).astype(np.float32)
        system = DistributedMoE(workload.strategy, weights)
        system.forward(x, workload.plan, workload.owner)
        combine = system.combine_matrix()
        sent_rows = combine.sum(axis=1) // (HIDDEN * system.dtype_bytes)
        np.testing.assert_array_equal(
            sent_rows, workload.geometry.unique_tokens_per_rank
        )

    def test_single_rank_moves_nothing_remote(self):
        strategy, plan, owner, weights, x = build_case(tp=1, ep=1)
        system = DistributedMoE(strategy, weights)
        system.forward(x, plan, owner)
        assert system.log.total_wire_bytes() == 0

    def test_message_log_phases(self):
        strategy, plan, owner, weights, x = build_case()
        system = DistributedMoE(strategy, weights)
        system.forward(x, plan, owner)
        phases = {phase for phase, *_ in system.log.entries}
        assert phases == {"dispatch", "combine"}

    def test_message_log_validation(self):
        log = MessageLog()
        with pytest.raises(ValueError):
            log.record("dispatch", 0, 1, -5)


class TestValidation:
    def test_plan_mismatch(self):
        strategy, plan, owner, weights, x = build_case()
        other = ExpertWeights.init(4, HIDDEN, FFN)
        with pytest.raises(ValueError):
            DistributedMoE(strategy, other).forward(x, plan, owner)

    def test_owner_out_of_range(self):
        strategy, plan, owner, weights, x = build_case()
        bad = np.full_like(owner, 99)
        with pytest.raises(ValueError):
            DistributedMoE(strategy, weights).forward(x, plan, bad)

    def test_indivisible_model(self):
        weights = ExpertWeights.init(6, HIDDEN, FFN)
        with pytest.raises(ValueError):
            DistributedMoE(ParallelStrategy(1, 4), weights)


@given(
    tp=st.sampled_from([1, 2]),
    ep=st.sampled_from([1, 2, 4]),
    topk=st.integers(min_value=1, max_value=3),
    tokens=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_distributed_equals_reference_property(tp, ep, topk, tokens, seed):
    experts = 4 * ep if ep > 1 else 4
    rng = np.random.default_rng(seed)
    plan = routing_from_fractions(tokens, topk, balanced_fractions(experts), rng)
    strategy = ParallelStrategy(tp_size=tp, ep_size=ep)
    owner = token_owner_ranks(tokens, strategy.world_size)
    weights = ExpertWeights.init(experts, 16, 8, rng)
    x = rng.normal(size=(tokens, 16)).astype(np.float32)
    out = DistributedMoE(strategy, weights).forward(x, plan, owner)
    reference = reference_moe_forward(x, plan, weights)
    np.testing.assert_allclose(out, reference, rtol=2e-4, atol=2e-5)
