"""Export-schema consistency: every format agrees on optional columns.

The ``policy`` column used to disagree between formats: a layer-level
policy-swept grid emitted the CSV column but no JSON field (the JSON
field hung off ``model_timing``, which layer rows lack).  One predicate
per axis now gates every export — ``to_rows`` (and therefore
``to_csv``), ``to_table``, ``to_json`` — and the new ``stragglers``
column follows the identical rule.
"""

import csv
import io
import json

import pytest

from repro import ExperimentSpec, StragglerSpec


def _grid(**kwargs):
    return ExperimentSpec.grid(
        models="mixtral", clusters="h800", strategies=(1, 8), tokens=2048,
        systems=("comet", "megatron-cutlass"), **kwargs,
    )


def _headers(results):
    headers, _ = results.to_rows()
    return headers


def _json_rows(results):
    return json.loads(results.to_json())["rows"]


class TestPolicyColumnAgreement:
    def test_baseline_grid_has_no_policy_anywhere(self):
        results = _grid().run()
        assert "policy" not in _headers(results)
        table_headers, _ = results.to_table()
        assert "policy" not in table_headers
        assert all("overlap_policy" not in doc for doc in _json_rows(results))

    @pytest.mark.parametrize("level", ("layer", "model"))
    def test_swept_grid_agrees_across_formats(self, level):
        """The historical bug: at level='layer' the CSV had the policy
        column but the JSON rows lacked the field."""
        results = _grid(
            overlap_policies=("per_layer", "cross_layer")
        ).run(level=level)
        headers = _headers(results)
        assert "policy" in headers
        table_headers, _ = results.to_table()
        assert "policy" in table_headers
        docs = _json_rows(results)
        assert docs and all("overlap_policy" in doc for doc in docs)
        # Every row carries a concrete cell, per_layer rows included.
        idx = headers.index("policy")
        _, rows = results.to_rows()
        assert {row[idx] for row in rows} == {"per_layer", "cross_layer"}

    @pytest.mark.parametrize("level", ("layer", "model"))
    def test_single_nondefault_policy_agrees(self, level):
        """A single-policy (non-default) grid must make the same
        column decision in every format."""
        results = _grid(overlap_policies="cross_layer").run(level=level)
        decisions = {
            "csv": "policy" in _headers(results),
            "table": "policy" in results.to_table()[0],
            "json": all("overlap_policy" in d for d in _json_rows(results)),
        }
        assert len(set(decisions.values())) == 1, decisions

    def test_filter_keeps_formats_agreeing(self):
        """Narrowing a swept set to one policy may drop the column, but
        all formats must drop (or keep) it together."""
        swept = _grid(overlap_policies=("per_layer", "cross_layer")).run(
            level="model"
        )
        for policy in ("per_layer", "cross_layer"):
            narrowed = swept.filter(overlap_policy=policy)
            decisions = {
                "csv": "policy" in _headers(narrowed),
                "table": "policy" in narrowed.to_table()[0],
                "json": all(
                    "overlap_policy" in d for d in _json_rows(narrowed)
                ) if narrowed.rows else False,
            }
            assert len(set(decisions.values())) == 1, (policy, decisions)


class TestStragglerColumnAgreement:
    """The new axis applies the same only-when-swept rule everywhere."""

    def test_layer_level_straggler_sweep_rejected(self):
        """Layer timings never see the spec; running the swept grid at
        layer level would export baseline numbers labelled as straggler
        measurements, so it raises instead."""
        with pytest.raises(ValueError, match="level='model'"):
            _grid(stragglers=(1.0, 1.5)).run(level="layer")

    def test_swept_stragglers_in_every_format(self, level="model"):
        results = _grid(stragglers=(1.0, 1.5)).run(level=level)
        headers = _headers(results)
        assert "stragglers" in headers
        assert "stragglers" in results.to_table()[0]
        docs = _json_rows(results)
        assert docs and all("stragglers" in doc for doc in docs)
        idx = headers.index("stragglers")
        _, rows = results.to_rows()
        labels = {row[idx] for row in rows}
        assert "uniform" in labels and len(labels) == 2

    def test_uniform_only_grid_stays_clean(self):
        """An explicit uniform spec is the baseline: no column, and the
        export is byte-identical to the axis-free grid."""
        plain = _grid().run()
        uniform = _grid(stragglers=StragglerSpec.uniform(8)).run()
        assert "stragglers" not in _headers(uniform)
        assert uniform.to_csv() == plain.to_csv()
        assert uniform.to_json() == plain.to_json()

    def test_model_level_json_carries_rank_detail(self):
        results = _grid(stragglers=(1.0, 1.5)).run(level="model")
        docs = _json_rows(results)
        slow = [d for d in docs if d["stragglers"] != "uniform"]
        assert slow
        for doc in slow:
            assert "model_makespan_ms" in doc
            assert len(doc["rank_makespans_ms"]) == 8
            assert doc["imbalance_ms"] >= 0.0
        base = [d for d in docs if d["stragglers"] == "uniform"]
        assert all("rank_makespans_ms" not in d for d in base)

    def test_csv_round_trips(self):
        results = _grid(
            overlap_policies=("per_layer", "cross_layer"),
            stragglers=(1.0, 1.5),
        ).run(level="model")
        text = results.to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        headers, data = rows[0], rows[1:]
        assert headers.index("policy") < headers.index("stragglers")
        assert all(len(row) == len(headers) for row in data)
        # 2 policies x 2 straggler points x 2 systems
        assert len(data) == 8
