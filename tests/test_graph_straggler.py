"""Per-rank schedule graphs: straggler & skew modeling.

Acceptance contract:

* the **uniform** straggler spec (multiplier 1.0, balanced placement)
  lowers to per-rank graphs whose scheduled makespan is exactly ``==``
  the single-rank graph makespan for every system x policy on the
  seeded grid (every rank's chain performs the same float accumulations
  and the barrier maxima take maxima of bit-equal values);
* a 1.5x slow-rank preset strictly increases the makespan, and the slow
  rank appears on the reported critical path;
* the analytic list scheduler and the DES reference executor agree
  exactly on per-rank graphs (cross-rank barrier edges included);
* the axis threads through ``run_model`` / ``run_training_step`` /
  ``StepCostModel`` / the declarative grids without perturbing the
  straggler-free paths.
"""

import pytest

from repro import (
    MIXTRAL_8X7B,
    ExperimentSpec,
    ParallelStrategy,
    Scenario,
    StepCostModel,
    StragglerSpec,
    h800_node,
    run_model,
    run_training_step,
)
from repro.api.registry import SYSTEM_REGISTRY
from repro.graph import (
    OVERLAP_POLICIES,
    LayerPhase,
    NodeKind,
    build_forward_graph,
    build_training_graph,
    des_schedule,
    list_schedule,
    rank_makespans,
)
from repro.hw.multinode import IB_400G, h800_pod
from repro.hw.presets import NVLINK_H800
from repro.runtime import make_workload
from repro.serve import ServeScenario, ServeSpec, TraceSpec

POD = h800_pod(2).effective_cluster()
SYSTEMS = ("comet", "tutel", "fastermoe", "megatron-cutlass")

PHASES = (
    LayerPhase(NodeKind.GATE, 10.0),
    LayerPhase(NodeKind.DISPATCH, 25.0, comm=True),
    LayerPhase(NodeKind.EXPERT, 40.0),
    LayerPhase(NodeKind.ACTIVATION, 5.0),
    LayerPhase(NodeKind.EXPERT, 35.0),
    LayerPhase(NodeKind.COMBINE, 20.0, comm=True),
    LayerPhase(NodeKind.HOST, 3.0),
)


class TestStragglerSpec:
    def test_uniform(self):
        spec = StragglerSpec.uniform(4)
        assert spec.num_ranks == 4
        assert spec.is_uniform
        assert spec.label == "uniform"

    def test_slow_rank(self):
        spec = StragglerSpec.slow_rank(8, rank=3, compute_mult=1.5)
        assert not spec.is_uniform
        assert spec.compute_mult[3] == 1.5
        assert all(m == 1.0 for i, m in enumerate(spec.compute_mult) if i != 3)
        assert spec.rank_multipliers(3) == (1.5, 1.0, 1.0)
        assert "slow3" in spec.label

    def test_degraded_link(self):
        spec = StragglerSpec.degraded_link(8, 2, IB_400G, NVLINK_H800)
        assert spec.comm_mult[2] == NVLINK_H800.gbps / IB_400G.gbps
        assert spec.comm_mult[0] == 1.0
        with pytest.raises(ValueError):
            StragglerSpec.degraded_link(8, 2, NVLINK_H800, IB_400G)

    def test_skewed_placement_deterministic(self):
        a = StragglerSpec.skewed_placement(8, 64, seed=7)
        b = StragglerSpec.skewed_placement(8, 64, seed=7)
        assert a == b
        assert not a.is_uniform
        assert a != StragglerSpec.skewed_placement(8, 64, seed=8)
        # Load multipliers average ~1 (conserved work).
        mean = sum(a.expert_mult) / len(a.expert_mult)
        assert mean == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerSpec((1.0, 0.0), (1.0, 1.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            StragglerSpec((1.0,), (1.0, 1.0), (1.0,))
        with pytest.raises(ValueError):
            StragglerSpec.slow_rank(4, rank=4)
        with pytest.raises(ValueError):
            StragglerSpec.uniform(0)

    def test_fingerprint_covers_bits(self):
        base = StragglerSpec.slow_rank(4, compute_mult=1.5)
        assert base.fingerprint() == StragglerSpec.slow_rank(
            4, compute_mult=1.5
        ).fingerprint()
        assert (
            base.fingerprint()
            != StragglerSpec.slow_rank(4, compute_mult=1.5000000001).fingerprint()
        )
        assert (
            base.fingerprint()
            != StragglerSpec.slow_rank(4, rank=1, compute_mult=1.5).fingerprint()
        )

    def test_scale_phases_uniform_is_identity(self):
        spec = StragglerSpec.uniform(2)
        assert spec.scale_phases(PHASES, 0) == PHASES
        assert spec.scale_phases(PHASES, 1) == PHASES


class TestHandBuiltGraphs:
    """IR-level contracts on the synthetic phase list."""

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_uniform_equals_single_rank_bitwise(self, policy):
        single = list_schedule(build_forward_graph(PHASES, 50.0, 6, policy))
        per_rank = list_schedule(
            build_forward_graph(
                PHASES, 50.0, 6, policy, StragglerSpec.uniform(4)
            )
        )
        assert per_rank.makespan_us == single.makespan_us
        assert per_rank.imbalance_us() == 0.0
        spans = per_rank.rank_makespans()
        assert set(spans) == {0, 1, 2, 3}
        assert all(span == single.makespan_us for span in spans.values())

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_slow_rank_strictly_slower_and_on_critical_path(self, policy):
        single = list_schedule(build_forward_graph(PHASES, 50.0, 6, policy))
        slow = StragglerSpec.slow_rank(4, rank=2, compute_mult=1.5)
        schedule = list_schedule(
            build_forward_graph(PHASES, 50.0, 6, policy, slow)
        )
        assert schedule.makespan_us > single.makespan_us
        assert any(n.stream.rank == 2 for n in schedule.critical_path())

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_des_agrees_exactly_on_per_rank_graphs(self, policy):
        for spec in (
            StragglerSpec.uniform(4),
            StragglerSpec.slow_rank(4, rank=1, compute_mult=1.7),
            StragglerSpec.degraded_link(4, 3, IB_400G, NVLINK_H800),
        ):
            graph = build_forward_graph(PHASES, 50.0, 4, policy, spec)
            analytic = list_schedule(graph)
            finish, makespan = des_schedule(graph)
            assert finish == analytic.finish_us
            assert makespan == analytic.makespan_us
            assert rank_makespans(graph, finish) == analytic.rank_makespans()

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_training_uniform_and_slow(self, policy):
        args = (PHASES, PHASES, 50.0, 100.0, 4, 80.0, 30.0, policy)
        single = list_schedule(build_training_graph(*args))
        uniform = list_schedule(
            build_training_graph(*args, StragglerSpec.uniform(4))
        )
        assert uniform.makespan_us == single.makespan_us
        slow = list_schedule(
            build_training_graph(
                *args, StragglerSpec.slow_rank(4, rank=0, compute_mult=1.5)
            )
        )
        assert slow.makespan_us > single.makespan_us
        finish, makespan = des_schedule(
            build_training_graph(
                *args, StragglerSpec.slow_rank(4, rank=0, compute_mult=1.5)
            )
        )
        assert finish == slow.finish_us and makespan == slow.makespan_us

    def test_comm_degradation_only(self):
        """A degraded link alone must also stretch the makespan."""
        spec = StragglerSpec.slow_rank(4, rank=1, compute_mult=1.0, comm_mult=3.0)
        assert not spec.is_uniform
        single = list_schedule(build_forward_graph(PHASES, 50.0, 4, "per_layer"))
        slow = list_schedule(
            build_forward_graph(PHASES, 50.0, 4, "per_layer", spec)
        )
        assert slow.makespan_us > single.makespan_us

    def test_rank0_zero_phase_does_not_drop_other_ranks(self):
        """Regression: active phase positions are the union across ranks.

        Rank 0's exposed comm can re-expose to exactly 0.0 (fully hidden,
        e.g. COMET on a balanced workload) while a degraded rank's stays
        positive; pruning by rank 0's zero pattern used to drop the
        degraded rank's collectives from the graph entirely, silently
        zeroing the straggler's effect.
        """
        zero_comm = (
            LayerPhase(NodeKind.GATE, 10.0),
            LayerPhase(NodeKind.DISPATCH, 0.0, comm=True),
            LayerPhase(NodeKind.EXPERT, 40.0),
            LayerPhase(NodeKind.COMBINE, 0.0, comm=True),
            LayerPhase(NodeKind.HOST, 3.0),
        )
        slow_comm = (
            LayerPhase(NodeKind.GATE, 10.0),
            LayerPhase(NodeKind.DISPATCH, 50.0, comm=True),
            LayerPhase(NodeKind.EXPERT, 40.0),
            LayerPhase(NodeKind.COMBINE, 30.0, comm=True),
            LayerPhase(NodeKind.HOST, 3.0),
        )
        for policy in OVERLAP_POLICIES:
            baseline = list_schedule(
                build_forward_graph([zero_comm, zero_comm], 20.0, 3, policy)
            )
            degraded = list_schedule(
                build_forward_graph([zero_comm, slow_comm], 20.0, 3, policy)
            )
            # Rank 1's comm must survive pruning and stretch the step.
            assert any(
                n.stream.rank == 1 and n.duration_us > 0.0 and n.stream.kind == "comm"
                for n in degraded.graph
            ), policy
            assert degraded.makespan_us > baseline.makespan_us, policy
            finish, makespan = des_schedule(degraded.graph)
            assert finish == degraded.finish_us

    def test_misaligned_rank_table_rejected(self):
        short = (LayerPhase(NodeKind.GATE, 10.0),)
        with pytest.raises(ValueError, match="misaligned"):
            build_forward_graph([PHASES, short], 20.0, 2, "per_layer")

    def test_distinct_fingerprints(self):
        """Per-rank graphs never collide with single-rank graphs (or with
        each other across specs) in the schedule cache."""
        flat = build_forward_graph(PHASES, 50.0, 2, "per_layer")
        uniform = build_forward_graph(
            PHASES, 50.0, 2, "per_layer", StragglerSpec.uniform(2)
        )
        slow = build_forward_graph(
            PHASES, 50.0, 2, "per_layer", StragglerSpec.slow_rank(2, compute_mult=1.5)
        )
        prints = {flat.fingerprint(), uniform.fingerprint(), slow.fingerprint()}
        assert len(prints) == 3
        assert flat.ranks() == (0,)
        assert uniform.ranks() == (0, 1)


# Seeded grid: systems x clusters x strategies (the acceptance sweep).
GRID = [
    (system, cluster, strategy, tokens)
    for system in SYSTEMS
    for cluster, strategy in (
        (h800_node(), ParallelStrategy(1, 8)),
        (POD, ParallelStrategy(2, 8)),
    )
    for tokens in (4096,)
]
GRID_IDS = [f"{s}-{c.name}-{st}-M{t}" for s, c, st, t in GRID]


class TestSystemGridAcceptance:
    """The acceptance criterion, per system x policy on the seeded grid."""

    @pytest.mark.parametrize(
        "system_name,cluster,strategy,tokens", GRID, ids=GRID_IDS
    )
    def test_uniform_bit_identity_and_slow_rank_monotonicity(
        self, system_name, cluster, strategy, tokens
    ):
        system = SYSTEM_REGISTRY.create(system_name)
        workload = make_workload(MIXTRAL_8X7B, cluster, strategy, tokens)
        if not system.supports(workload):
            pytest.skip("unsupported pair")
        timing = run_model(
            system, MIXTRAL_8X7B, cluster, strategy, tokens, workload=workload
        )
        uniform = StragglerSpec.uniform(strategy.world_size)
        slow = StragglerSpec.slow_rank(
            strategy.world_size, rank=0, compute_mult=1.5
        )
        phases = system.lower_layer(timing.moe)
        for policy in OVERLAP_POLICIES:
            single = list_schedule(
                build_forward_graph(
                    phases, timing.attention_us, timing.num_layers, policy
                )
            )
            per_rank = list_schedule(
                build_forward_graph(
                    system.lower_rank_phases(timing.moe, uniform),
                    timing.attention_us,
                    timing.num_layers,
                    policy,
                    uniform,
                )
            )
            # Uniform degenerate case: exact bit equality, per rank.
            assert per_rank.makespan_us == single.makespan_us
            assert per_rank.imbalance_us() == 0.0
            assert all(
                span == single.makespan_us
                for span in per_rank.rank_makespans().values()
            )
            # 1.5x slow rank: strictly slower, slow rank on the path.
            slowed = list_schedule(
                build_forward_graph(
                    system.lower_rank_phases(timing.moe, slow),
                    timing.attention_us,
                    timing.num_layers,
                    policy,
                    slow,
                )
            )
            assert slowed.makespan_us > single.makespan_us
            assert any(n.stream.rank == 0 for n in slowed.critical_path())


class TestRunnerThreading:
    CLUSTER = h800_node()
    STRATEGY = ParallelStrategy(1, 8)

    def test_run_model_uniform_is_legacy(self):
        system = SYSTEM_REGISTRY.create("comet")
        base = run_model(system, MIXTRAL_8X7B, self.CLUSTER, self.STRATEGY, 4096)
        uniform = run_model(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, 4096, stragglers=StragglerSpec.uniform(8),
        )
        assert uniform.total_us == base.total_us
        assert uniform.graph_makespan_us is None
        assert uniform.stragglers is None
        assert uniform.rank_makespans_us is None
        assert uniform.imbalance_us == 0.0

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_run_model_slow_rank(self, policy):
        slow_spec = StragglerSpec.slow_rank(8, compute_mult=1.5)
        base = run_model(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, 4096, overlap_policy=policy,
        )
        slow = run_model(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, 4096, overlap_policy=policy, stragglers=slow_spec,
        )
        assert slow.makespan_us > base.makespan_us
        assert slow.stragglers == slow_spec
        assert len(slow.rank_makespans_us) == 8
        assert slow.makespan_us == max(slow.rank_makespans_us)
        assert slow.rank_makespans() == dict(enumerate(slow.rank_makespans_us))
        # The additive (bottleneck-rank) view is untouched.
        assert slow.total_us == base.total_us

    def test_run_training_step_slow_rank(self):
        slow_spec = StragglerSpec.slow_rank(8, compute_mult=1.5)
        base = run_training_step(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, 4096,
        )
        slow = run_training_step(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, 4096, stragglers=slow_spec,
        )
        assert slow.makespan_us > base.step_us
        assert slow.step_us == base.step_us
        assert len(slow.rank_makespans_us) == 8

    def test_world_size_mismatch_raises(self):
        with pytest.raises(ValueError, match="world size"):
            run_model(
                SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
                self.STRATEGY, 4096,
                stragglers=StragglerSpec.slow_rank(4, compute_mult=1.5),
            )

    def test_step_cost_model(self):
        base = StepCostModel(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY,
        )
        uniform = StepCostModel(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY, stragglers=StragglerSpec.uniform(8),
        )
        slow = StepCostModel(
            SYSTEM_REGISTRY.create("comet"), MIXTRAL_8X7B, self.CLUSTER,
            self.STRATEGY,
            stragglers=StragglerSpec.slow_rank(8, compute_mult=1.5),
        )
        for prefill, decode in ((512, 0), (2048, 128), (1, 1)):
            assert uniform.step_us(prefill, decode) == base.step_us(
                prefill, decode
            )
            assert slow.step_us(prefill, decode) > base.step_us(prefill, decode)


class TestDeclarativeAxis:
    def test_grid_axis_and_float_shorthand(self):
        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies=(1, 8), tokens=2048,
            stragglers=(1.0, 1.5), systems="comet",
        )
        assert len(spec.scenarios) == 2
        baseline, slowed = spec.scenarios
        assert baseline.stragglers is None  # 1.0 shorthand = no spec
        assert slowed.stragglers is not None
        assert slowed.stragglers.num_ranks == 8
        results = spec.run(level="model")
        assert len(results) == 2
        base_row, slow_row = results.rows
        assert slow_row.value_ms > base_row.value_ms

    def test_scenario_label_and_validation(self):
        slow = StragglerSpec.slow_rank(8, compute_mult=1.5)
        scenario = Scenario(
            config=MIXTRAL_8X7B, cluster=h800_node(),
            strategy=ParallelStrategy(1, 8), tokens=2048, stragglers=slow,
        )
        assert slow.label in scenario.label
        with pytest.raises(ValueError, match="ranks"):
            Scenario(
                config=MIXTRAL_8X7B, cluster=h800_node(),
                strategy=ParallelStrategy(1, 8), tokens=2048,
                stragglers=StragglerSpec.slow_rank(4, compute_mult=1.5),
            )

    def test_filter_by_stragglers(self):
        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies=(1, 8), tokens=2048,
            stragglers=(1.0, 1.5), systems="comet",
        )
        results = spec.run(level="model")
        assert len(results.filter(stragglers="uniform")) == 1
        label = spec.scenarios[1].stragglers.label
        assert len(results.filter(stragglers=label)) == 1
        # The label form and the spec form select the same baseline rows.
        by_spec = results.filter(stragglers=StragglerSpec.uniform(8))
        assert len(by_spec) == 1
        assert by_spec.rows == results.filter(stragglers="uniform").rows
        assert (
            len(results.filter(stragglers=spec.scenarios[1].stragglers)) == 1
        )
        # The float shorthand (the grid's own input form) works too.
        assert results.filter(stragglers=1.0).rows == by_spec.rows
        assert len(results.filter(stragglers=1.5)) == 1
        assert results.filter(stragglers=1.5).rows == results.filter(
            stragglers=spec.scenarios[1].stragglers
        ).rows
        assert len(results.filter(stragglers=2.0)) == 0

    def test_axis_is_canonical(self):
        """Every spelling of the baseline (None, 1.0, explicit uniform
        spec) normalises to None, so duplicate baseline grid points
        collapse in run() instead of exporting twice."""
        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies=(1, 8), tokens=2048,
            stragglers=(1.0, StragglerSpec.uniform(8), None, 1.5),
            systems="comet",
        )
        assert [s.stragglers for s in spec.scenarios[:3]] == [None] * 3
        results = spec.run(level="model")
        assert len(results) == 2  # one baseline row + one slow-rank row
        assert len(results.filter(stragglers="uniform")) == 1

    def test_layer_level_straggler_grid_raises(self):
        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies=(1, 8), tokens=2048,
            stragglers=1.5, systems="comet",
        )
        with pytest.raises(ValueError, match="level='model'"):
            spec.run()  # default level="layer"
        assert len(spec.run(level="model")) == 1

    def test_custom_lower_layer_system_stays_aligned(self):
        """A system overriding lower_layer with a different phase
        structure must still lower per-rank (generic scaling of its own
        phases, structurally aligned across ranks)."""
        class FivePhase(type(SYSTEM_REGISTRY.create("megatron-cutlass"))):
            name = "FivePhase"

            def lower_layer(self, timing):
                return (
                    LayerPhase(NodeKind.GATE, timing.gate_us),
                    LayerPhase(
                        NodeKind.DISPATCH,
                        timing.exposed_layer0_comm_us,
                        comm=True,
                    ),
                    LayerPhase(
                        NodeKind.EXPERT,
                        timing.layer0_comp_us
                        + timing.activation_us
                        + timing.layer1_comp_us,
                    ),
                    LayerPhase(
                        NodeKind.COMBINE,
                        timing.exposed_layer1_comm_us,
                        comm=True,
                    ),
                    LayerPhase(NodeKind.HOST, timing.host_us),
                )

        system = FivePhase()
        workload = make_workload(
            MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), 2048
        )
        timing = system.time_layer(workload)
        spec = StragglerSpec.slow_rank(8, rank=2, compute_mult=1.5)
        table = system.lower_rank_phases(timing, spec)
        assert len(table) == 8
        assert all(len(phases) == 5 for phases in table)
        shapes = {tuple((p.kind, p.comm) for p in phases) for phases in table}
        assert len(shapes) == 1  # structurally aligned across ranks
        # And the graph builders accept it end to end.
        schedule = list_schedule(
            build_forward_graph(table, 100.0, 3, "per_layer", spec)
        )
        baseline = list_schedule(
            build_forward_graph(system.lower_layer(timing), 100.0, 3, "per_layer")
        )
        assert schedule.makespan_us > baseline.makespan_us

    def test_serve_grid_axis(self):
        spec = ServeSpec.grid(
            models="mixtral", clusters="h800",
            traces=TraceSpec(kind="poisson", rps=10.0, duration_s=2.0),
            stragglers=(1.0, 1.5), systems="comet",
        )
        assert len(spec.scenarios) == 2
        assert spec.scenarios[0].stragglers is None
        assert spec.scenarios[1].stragglers.num_ranks == 8
        results = spec.run()
        assert len(results) == 2
        base, slow = results.reports
        assert slow.scenario_label != base.scenario_label
        # The slow rank paces every step: strictly worse tail latency.
        assert slow.e2e_percentiles()["p99"] > base.e2e_percentiles()["p99"]

    def test_serve_scenario_validation(self):
        with pytest.raises(ValueError, match="ranks"):
            ServeScenario(
                config=MIXTRAL_8X7B, cluster=h800_node(),
                strategy=ParallelStrategy(1, 8),
                stragglers=StragglerSpec.slow_rank(4, compute_mult=1.5),
            )
