"""`repro trace` modes and the --trace-out/--metrics-out flags.

Acceptance for the observability PR: ``repro trace --fleet`` emits a
valid Chrome trace with per-replica pids, request flow events, counter
tracks, and autoscaler/failure instants.
"""

import json

from repro.cli import main
from repro.obs import validate_chrome_trace

FAST_SERVE = ["--rps", "20", "--duration", "1"]


def _load(path):
    doc = json.loads(path.read_text())
    return doc, validate_chrome_trace(doc)


class TestTraceKernels:
    def test_kernel_trace_default_mode(self, tmp_path, capsys):
        out = tmp_path / "k.json"
        assert main(["trace", "--tokens", "4096", "--out", str(out)]) == 0
        doc, counts = _load(out)
        assert counts["X"] > 0
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any("layer0" in lane for lane in lanes)

    def test_cluster_and_parallelism_are_configurable(self, tmp_path, capsys):
        out = tmp_path / "k.json"
        code = main([
            "trace", "--cluster", "l20", "--tp", "2",
            "--tokens", "4096", "--out", str(out),
        ])
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text()))["X"] > 0

    def test_bad_tp_is_reported(self, tmp_path, capsys):
        code = main(["trace", "--tp", "-1", "--out", str(tmp_path / "x.json")])
        assert code == 2
        assert "tp" in capsys.readouterr().err


class TestTraceGraph:
    def test_graph_mode_emits_critical_path_instants(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main([
            "trace", "--graph", "--tokens", "4096", "--out", str(out),
        ])
        assert code == 0
        doc, counts = _load(out)
        assert counts["i"] > 0  # critical-path markers
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["args"].get("critical") for e in x)

    def test_graph_mode_multi_rank_with_stragglers(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main([
            "trace", "--graph", "--tokens", "4096",
            "--stragglers", "1.5", "--out", str(out),
        ])
        assert code == 0
        doc, _ = _load(out)
        procs = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(procs) > 1 and "rank0" in procs


class TestTraceServe:
    def test_serve_mode_emits_flows_and_counters(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        code = main(["trace", "--serve", *FAST_SERVE, "--out", str(out)])
        assert code == 0
        doc, counts = _load(out)
        assert counts["C"] > 0 and counts["s"] == counts["f"] > 0
        tracks = {e["name"] for e in doc["traceEvents"] if e["ph"] == "C"}
        assert {"queue depth", "batch tokens", "running"} <= tracks


class TestTraceFleet:
    def test_fleet_trace_acceptance(self, tmp_path, capsys):
        """The PR's acceptance criterion, end to end."""
        out = tmp_path / "f.json"
        code = main(["trace", "--fleet", *FAST_SERVE, "--out", str(out)])
        assert code == 0
        doc, counts = _load(out)
        events = doc["traceEvents"]
        # per-replica pids (plus the router process)
        procs = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"router", "replica0", "replica1"} <= procs
        # request flow events, all paired
        assert counts["s"] == counts["f"] > 0
        # counter tracks
        assert counts["C"] > 0
        # failure/recovery instants from the default injected failure
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert {"fail", "recover"} <= instants

    def test_fleet_trace_failures_none_disables_injection(
        self, tmp_path, capsys
    ):
        out = tmp_path / "f.json"
        code = main([
            "trace", "--fleet", *FAST_SERVE,
            "--failures", "none", "--out", str(out),
        ])
        assert code == 0
        doc, counts = _load(out)
        assert counts.get("i", 0) == 0

    def test_fleet_trace_respects_router_choice(self, tmp_path, capsys):
        out = tmp_path / "f.json"
        code = main([
            "trace", "--fleet", *FAST_SERVE, "--replicas", "3",
            "--router", "least_queue", "--failures", "none",
            "--out", str(out),
        ])
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text()))["X"] > 0


class TestTraceOutFlags:
    def test_model_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main([
            "model", "--tokens", "4096", "--systems", "comet",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        assert validate_chrome_trace(json.loads(trace_path.read_text()))
        metrics = json.loads(metrics_path.read_text())
        assert metrics["manifest"]["kind"] == "model"
        assert metrics["manifest"]["created_unix"] is not None
        assert any(
            k.startswith("model.") for k in metrics["metrics"]["gauges"]
        )

    def test_serve_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main([
            "serve", *FAST_SERVE, "--systems", "comet",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        counts = validate_chrome_trace(json.loads(trace_path.read_text()))
        assert counts["C"] > 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["manifest"]["kind"] == "serve"
        assert "serve.ttft_ms" in metrics["metrics"]["histograms"]

    def test_fleet_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main([
            "fleet", *FAST_SERVE, "--replicas", "2", "--systems", "comet",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        counts = validate_chrome_trace(json.loads(trace_path.read_text()))
        assert counts["s"] == counts["f"] > 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["manifest"]["kind"] == "fleet"
        assert metrics["metrics"]["counters"]["fleet.dispatches"] > 0
