"""Unit tests for DES resources and stores."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        granted = []

        def proc():
            request = resource.request()
            yield request
            granted.append(env.now)

        env.process(proc())
        env.run()
        assert granted == [0.0]

    def test_serialisation_on_single_slot(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        spans = []

        def worker(tag):
            with resource.request() as req:
                yield req
                start = env.now
                yield env.timeout(5.0)
                spans.append((tag, start, env.now))

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert spans == [("a", 0.0, 5.0), ("b", 5.0, 10.0)]

    def test_count_and_queue_len(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder():
            with resource.request() as req:
                yield req
                yield env.timeout(10.0)

        def waiter():
            with resource.request() as req:
                yield req

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        assert resource.count == 1
        assert resource.queue_len == 1

    def test_parallel_grants_match_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=3)
        finish_times = []

        def worker():
            with resource.request() as req:
                yield req
                yield env.timeout(4.0)
                finish_times.append(env.now)

        for _ in range(6):
            env.process(worker())
        env.run()
        assert finish_times == [4.0] * 3 + [8.0] * 3

    def test_release_via_context_manager_on_exception(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        acquired = []

        def failing():
            with resource.request() as req:
                yield req
                raise RuntimeError("dies holding the slot")

        def succeeding(caught):
            try:
                yield env.process(failing())
            except RuntimeError:
                caught.append(True)
            with resource.request() as req:
                yield req
                acquired.append(env.now)

        caught = []
        env.process(succeeding(caught))
        env.run()
        assert caught == [True]
        assert acquired == [0.0]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            yield store.put("item")

        def consumer():
            item = yield store.get()
            received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == ["item"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        received = []

        def consumer():
            item = yield store.get()
            received.append((env.now, item))

        def producer():
            yield env.timeout(7.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert received == [(7.0, "late")]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for i in range(4):
                yield store.put(i)

        def consumer():
            for _ in range(4):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [0, 1, 2, 3]

    def test_bounded_store_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        put_times = []

        def producer():
            for _ in range(2):
                yield store.put("x")
                put_times.append(env.now)

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert put_times == [0.0, 5.0]

    def test_len_reflects_items(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        assert len(store) == 2

    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)
