"""Unit behaviour of the perf layer: caches, fingerprints, config."""

import pytest

from repro import (
    MIXTRAL_8X7B,
    SYSTEM_REGISTRY,
    ParallelStrategy,
    StepCostModel,
    h800_node,
    perf,
)
from repro.runtime.workload import make_workload
from repro.systems import Comet, MegatronCutlass, Tutel

CLUSTER = h800_node()
STRATEGY = ParallelStrategy(1, 8)


def _workload(tokens=1024, seed=0):
    return make_workload(MIXTRAL_8X7B, CLUSTER, STRATEGY, tokens, seed=seed)


class TestBoundedCache:
    def test_hit_miss_counters(self):
        cache = perf.BoundedCache(maxsize=4, name="t")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.misses == 1 and cache.hits == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_lru_eviction_is_bounded(self):
        cache = perf.BoundedCache(maxsize=2, name="t")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b (least recently used)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_clear_resets_counters(self):
        cache = perf.BoundedCache(maxsize=2, name="t")
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == cache.misses == cache.evictions == 0

    def test_rejects_none_and_bad_maxsize(self):
        with pytest.raises(ValueError):
            perf.BoundedCache(maxsize=0)
        with pytest.raises(ValueError):
            perf.BoundedCache(maxsize=1).put("k", None)


class TestFingerprints:
    def test_workload_fingerprint_deterministic(self):
        assert _workload().fingerprint() == _workload().fingerprint()

    def test_workload_fingerprint_sensitive_to_inputs(self):
        base = _workload().fingerprint()
        assert _workload(tokens=2048).fingerprint() != base
        assert _workload(seed=1).fingerprint() != base

    def test_system_fingerprint_covers_knobs(self):
        assert Comet().fingerprint() == Comet().fingerprint()
        assert Comet().fingerprint() != Comet(reschedule=False).fingerprint()
        assert Comet().fingerprint() != Comet(fixed_nc=8).fingerprint()
        assert Tutel().fingerprint() != MegatronCutlass().fingerprint()

    def test_backward_variant_fingerprint_differs(self):
        system = Tutel()
        assert system.fingerprint() != system.backward_variant().fingerprint()

    def test_state_token_scopes_adaptive_comet(self):
        # Adaptive COMET's timing depends on instance history: each
        # instance gets its own token.  Non-adaptive variants are pure.
        assert Comet().timing_state_token() != Comet().timing_state_token()
        assert Comet(fixed_nc=8).timing_state_token() is None
        assert Comet(adaptive=False).timing_state_token() is None
        assert Tutel().timing_state_token() is None


class TestTimingCache:
    def test_cached_time_layer_hits_and_counts(self):
        perf.clear_caches()
        workload = _workload()
        system = MegatronCutlass()
        first = perf.cached_time_layer(system, workload)
        second = perf.cached_time_layer(MegatronCutlass(), workload)
        assert first == second
        assert perf.TIMING_CACHE.hits >= 1
        assert perf.time_layer_calls() == 1

    def test_disabled_config_bypasses_cache(self):
        perf.clear_caches()
        workload = _workload()
        with perf.disabled():
            perf.cached_time_layer(MegatronCutlass(), workload)
            perf.cached_time_layer(MegatronCutlass(), workload)
        assert len(perf.TIMING_CACHE) == 0
        assert perf.time_layer_calls() == 2

    def test_configure_restores_flags(self):
        assert perf.CONFIG.analytic_layer0
        with perf.configure(analytic_layer0=False):
            assert not perf.CONFIG.analytic_layer0
        assert perf.CONFIG.analytic_layer0
        with pytest.raises(ValueError):
            with perf.configure(nonsense=True):
                pass

    def test_shared_workload_returns_same_object(self):
        perf.clear_caches()
        a = perf.shared_workload(MIXTRAL_8X7B, CLUSTER, STRATEGY, 1024)
        b = perf.shared_workload(MIXTRAL_8X7B, CLUSTER, STRATEGY, 1024)
        assert a is b
        assert perf.WORKLOAD_CACHE.hits == 1


class TestStepCostModelCache:
    def test_step_cache_bounded_with_stats_and_clear(self):
        perf.clear_caches()
        model = StepCostModel(
            SYSTEM_REGISTRY.create("megatron-cutlass"),
            MIXTRAL_8X7B,
            CLUSTER,
            STRATEGY,
            bucket_tokens=256,
        )
        cost = model.step_us(100, 20)
        assert model.step_us(90, 30) == cost  # same bucket -> memoised
        stats = model.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["maxsize"] > 0
        model.clear()
        assert model.cache_stats()["hits"] == 0
        assert model.step_us(100, 20) == cost  # recomputed identically

    def test_workload_shared_across_systems(self):
        """Every system prices the identical bucket geometry (the old
        module-level workload cache contract, now bounded in repro.perf)."""
        perf.clear_caches()
        kwargs = dict(
            config=MIXTRAL_8X7B,
            cluster=CLUSTER,
            strategy=STRATEGY,
            bucket_tokens=256,
        )
        a = StepCostModel(SYSTEM_REGISTRY.create("comet"), **kwargs)
        b = StepCostModel(SYSTEM_REGISTRY.create("tutel"), **kwargs)
        assert a._workload(512) is b._workload(512)

    def test_cache_stats_shape(self):
        stats = perf.cache_stats()
        assert set(stats) == {
            "timing",
            "workload",
            "graph",
            "graph_batch",
            "step-cost",
        }
        for doc in stats.values():
            assert {"hits", "misses", "evictions", "size", "maxsize"} <= set(doc)


class TestCacheConcurrencyHammer:
    """Eviction-race hardening: every cache operation is atomic.

    Eight threads hammer one small cache (every put evicts) while a
    reader polls stats; afterwards — and at every sampled instant — the
    counters must be coherent: non-negative, size bounded by maxsize,
    and hit_rate in [0, 1].  A second hammer drives the real grid
    entry point and asserts the ResultSets are byte-identical to the
    serial run.
    """

    THREADS = 8

    def test_bounded_cache_hammer(self):
        import threading

        cache = perf.BoundedCache(maxsize=4, name="hammer")
        samples = []
        stop = threading.Event()

        def writer(tid):
            for i in range(400):
                key = (tid * 7 + i) % 32
                value = cache.get(key)
                if value is None:
                    cache.put(key, key + 1)
                else:
                    assert value == key + 1

        def reader():
            while not stop.is_set():
                samples.append((cache.stats(), len(cache)))

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        poll = threading.Thread(target=reader)
        poll.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        poll.join()

        final = cache.stats()
        samples.append((final, len(cache)))
        for stats, size in samples:
            assert stats["hits"] >= 0
            assert stats["misses"] >= 0
            assert stats["evictions"] >= 0
            assert 0 <= stats["size"] <= stats["maxsize"]
            assert 0.0 <= stats["hit_rate"] <= 1.0
            assert 0 <= size <= stats["maxsize"]
        assert final["hits"] + final["misses"] == self.THREADS * 400

    def test_timing_cache_hammer_under_eviction(self):
        """A tiny TimingCache forces the popitem loop on nearly every
        put; concurrent time_layer calls must stay correct and the
        counters coherent."""
        import threading

        cache = perf.TimingCache(maxsize=2, name="hammer-timing")
        workloads = [_workload(tokens=1024 * (1 + i)) for i in range(4)]
        system = Comet()
        expected = {
            w.fingerprint(): system.time_layer(w) for w in workloads
        }
        errors = []

        def worker(tid):
            try:
                for i in range(30):
                    workload = workloads[(tid + i) % len(workloads)]
                    timing = cache.time_layer(system, workload)
                    assert timing == expected[workload.fingerprint()]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["evictions"] >= 1  # the hammer really evicted
        assert stats["size"] <= 2
        assert min(
            stats["hits"], stats["misses"], stats["evictions"],
            stats["time_layer_calls"],
        ) >= 0

    def test_grid_byte_identical_with_8_workers(self):
        """The full ExperimentSpec path: 8 worker threads sharing the
        global caches must reproduce the serial export byte for byte."""
        from repro import ExperimentSpec

        spec = ExperimentSpec.grid(
            models="mixtral", clusters="h800", strategies="sweep",
            tokens=(1024, 2048), seeds=(0, 1),
            systems=("comet", "tutel", "megatron-cutlass"),
        )
        perf.clear_caches()
        serial = spec.run()
        perf.clear_caches()
        threaded = spec.run(workers=self.THREADS)
        assert threaded.to_csv() == serial.to_csv()
        assert threaded.to_json() == serial.to_json()
        for name, stats in perf.cache_stats().items():
            assert stats["hits"] >= 0 and stats["misses"] >= 0, name
            assert stats["evictions"] >= 0
            assert 0 <= stats["size"] <= stats["maxsize"]
