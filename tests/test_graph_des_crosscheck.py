"""Cross-validation: analytic list scheduler vs DES execution of graphs.

The analytic scheduler in :mod:`repro.graph.scheduler` and the
process-based executor in :mod:`repro.graph.des_ref` are developed
independently; on identical graphs they must produce *identical* floats
— same finish time for every node, same makespan — because both resolve
same-timestamp readiness before dispatching and break ties by node id.
This extends the :mod:`test_fused_des_crosscheck` pattern from the fused
kernel to whole-model schedule graphs (and asserts exact equality, not
a tile-sized tolerance).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    COMM,
    COMPUTE,
    OVERLAP_POLICIES,
    LayerPhase,
    NodeKind,
    ScheduleGraph,
    Stream,
    build_forward_graph,
    build_training_graph,
    des_schedule,
    list_schedule,
)


def assert_exact_match(graph: ScheduleGraph) -> None:
    analytic = list_schedule(graph)
    des_finish, des_makespan = des_schedule(graph)
    assert analytic.finish_us == des_finish
    assert analytic.makespan_us == des_makespan


def random_graph(seed: int, nodes: int, edge_p: float, ranks: int) -> ScheduleGraph:
    rng = np.random.default_rng(seed)
    graph = ScheduleGraph()
    kinds = list(NodeKind)
    for i in range(nodes):
        deps = [d for d in range(i) if rng.random() < edge_p]
        stream = Stream(
            COMPUTE if rng.random() < 0.5 else COMM, int(rng.integers(0, ranks))
        )
        graph.add(
            kinds[int(rng.integers(0, len(kinds)))],
            float(rng.uniform(0.05, 25.0)),
            stream,
            deps=deps,
        )
    return graph


class TestFixedCases:
    def test_single_node(self):
        graph = ScheduleGraph()
        graph.add(NodeKind.EXPERT, 5.0, Stream(COMPUTE, 0))
        assert_exact_match(graph)

    def test_diamond(self):
        graph = ScheduleGraph()
        a = graph.add(NodeKind.GATE, 2.0, Stream(COMPUTE, 0))
        b = graph.add(NodeKind.DISPATCH, 7.0, Stream(COMM, 0), deps=(a,))
        c = graph.add(NodeKind.EXPERT, 5.0, Stream(COMPUTE, 0), deps=(a,))
        graph.add(NodeKind.COMBINE, 1.0, Stream(COMM, 0), deps=(b, c))
        assert_exact_match(graph)

    def test_contended_stream_with_equal_ready_times(self):
        """Several nodes ready at the same instant on one stream: the
        executors must pick the same (lowest-id) order."""
        graph = ScheduleGraph()
        root = graph.add(NodeKind.GATE, 3.0, Stream(COMPUTE, 0))
        for _ in range(5):
            graph.add(NodeKind.EXPERT, 2.0, Stream(COMPUTE, 1), deps=(root,))
        assert_exact_match(graph)

    def test_multi_rank_fan_in(self):
        graph = ScheduleGraph()
        sources = [
            graph.add(NodeKind.EXPERT, float(3 + r), Stream(COMPUTE, r))
            for r in range(4)
        ]
        graph.add(NodeKind.COMBINE, 2.0, Stream(COMM, 0), deps=sources)
        assert_exact_match(graph)

    def test_equal_durations_everywhere(self):
        """Maximum tie pressure: every completion lands on the same
        timestamps."""
        graph = ScheduleGraph()
        prev = ()
        for i in range(12):
            prev = (
                graph.add(
                    NodeKind.EXPERT, 1.0, Stream(COMPUTE, i % 2), deps=prev
                ),
            )
            graph.add(NodeKind.COMBINE, 1.0, Stream(COMM, 0), deps=prev)
        assert_exact_match(graph)


class TestModelGraphs:
    PHASES = (
        LayerPhase(NodeKind.GATE, 11.0),
        LayerPhase(NodeKind.DISPATCH, 6.0, comm=True),
        LayerPhase(NodeKind.EXPERT, 19.0),
        LayerPhase(NodeKind.ACTIVATION, 2.5),
        LayerPhase(NodeKind.EXPERT, 14.0),
        LayerPhase(NodeKind.COMBINE, 8.0, comm=True),
        LayerPhase(NodeKind.HOST, 1.5),
    )

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_forward(self, policy):
        assert_exact_match(build_forward_graph(self.PHASES, 9.0, 10, policy))

    @pytest.mark.parametrize("policy", OVERLAP_POLICIES)
    def test_training(self, policy):
        assert_exact_match(
            build_training_graph(
                self.PHASES, self.PHASES, 9.0, 18.0, 6, 40.0, 25.0, policy
            )
        )


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    nodes=st.integers(min_value=1, max_value=60),
    edge_p=st.floats(min_value=0.0, max_value=0.4),
    ranks=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=40, deadline=None)
def test_cross_check_random(seed, nodes, edge_p, ranks):
    assert_exact_match(random_graph(seed, nodes, edge_p, ranks))


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    layers=st.integers(min_value=1, max_value=12),
    attention=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=25, deadline=None)
def test_cross_check_random_model_phases(seed, layers, attention):
    """Policy graphs built from random phase durations cross-check too."""
    rng = np.random.default_rng(seed)
    phases = tuple(
        LayerPhase(phase.kind, float(rng.uniform(0.0, 30.0)), comm=phase.comm)
        for phase in TestModelGraphs.PHASES
    )
    for policy in OVERLAP_POLICIES:
        assert_exact_match(build_forward_graph(phases, attention, layers, policy))
