"""Unit tests for parallel strategies and expert placement."""

import numpy as np
import pytest

from repro.moe import balanced_fractions, routing_from_fractions, token_owner_ranks
from repro.parallel import ExpertPlacement, ParallelStrategy


class TestParallelStrategy:
    def test_world_size(self):
        assert ParallelStrategy(tp_size=2, ep_size=4).world_size == 8

    def test_rank_decomposition(self):
        s = ParallelStrategy(tp_size=2, ep_size=4)
        assert s.tp_rank(5) == 1
        assert s.ep_rank(5) == 2
        assert s.rank_of(2, 1) == 5

    def test_rank_roundtrip(self):
        s = ParallelStrategy(tp_size=4, ep_size=2)
        for rank in range(8):
            assert s.rank_of(s.ep_rank(rank), s.tp_rank(rank)) == rank

    def test_tp_group_contiguous(self):
        s = ParallelStrategy(tp_size=4, ep_size=2)
        assert s.ranks_in_ep_group(0) == [0, 1, 2, 3]
        assert s.ranks_in_ep_group(1) == [4, 5, 6, 7]

    def test_tp_group_of(self):
        s = ParallelStrategy(tp_size=2, ep_size=4)
        assert s.tp_group_of(5) == [4, 5]

    def test_experts_of_ep_group(self):
        s = ParallelStrategy(tp_size=1, ep_size=4)
        assert s.experts_of_ep_group(1, 8) == [2, 3]

    def test_ep_group_of_expert(self):
        s = ParallelStrategy(tp_size=1, ep_size=4)
        assert s.ep_group_of_expert(5, 8) == 2

    def test_experts_not_divisible_rejected(self):
        s = ParallelStrategy(tp_size=1, ep_size=3)
        with pytest.raises(ValueError):
            s.experts_per_ep_group(8)

    def test_validate_model(self):
        s = ParallelStrategy(tp_size=4, ep_size=2)
        s.validate_model(8, 1408 * 4)
        with pytest.raises(ValueError):
            s.validate_model(8, 1409)
        with pytest.raises(ValueError):
            ParallelStrategy(tp_size=1, ep_size=3).validate_model(8, 64)

    def test_sweep_covers_all_factorisations(self):
        sweep = ParallelStrategy.sweep(8)
        pairs = {(s.tp_size, s.ep_size) for s in sweep}
        assert pairs == {(1, 8), (2, 4), (4, 2), (8, 1)}

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ParallelStrategy(tp_size=0, ep_size=1)

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            ParallelStrategy(tp_size=2, ep_size=2).tp_rank(4)


class TestExpertPlacement:
    def make(self, tp=1, ep=4, experts=8):
        return ExpertPlacement(ParallelStrategy(tp_size=tp, ep_size=ep), experts)

    def make_plan_owner(self, tokens=64, topk=2, experts=8, world=4, seed=0):
        rng = np.random.default_rng(seed)
        plan = routing_from_fractions(tokens, topk, balanced_fractions(experts), rng)
        owner = token_owner_ranks(tokens, world)
        return plan, owner

    def test_experts_per_rank(self):
        assert self.make().experts_per_rank == 2

    def test_ranks_hosting_expert_pure_ep(self):
        placement = self.make()
        assert placement.ranks_hosting_expert(5) == [2]

    def test_ranks_hosting_expert_hybrid(self):
        placement = ExpertPlacement(ParallelStrategy(tp_size=2, ep_size=2), 8)
        assert placement.ranks_hosting_expert(0) == [0, 1]
        assert placement.ranks_hosting_expert(7) == [2, 3]

    def test_pair_matrix_conserves_pairs_pure_ep(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        matrix = placement.pair_matrix(plan, owner)
        assert matrix.sum() == plan.total_routed

    def test_pair_matrix_tp_fanout(self):
        """Under TP each pair is copied to every rank of the expert's group."""
        tp = 2
        placement = ExpertPlacement(ParallelStrategy(tp_size=tp, ep_size=2), 8)
        plan, owner = self.make_plan_owner(world=4)
        matrix = placement.pair_matrix(plan, owner)
        assert matrix.sum() == plan.total_routed * tp

    def test_rank_workload_row_conservation(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        workloads = placement.all_rank_workloads(plan, owner)
        assert sum(w.total_rows for w in workloads) == plan.total_routed

    def test_rank_workload_local_remote_split(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        w = placement.rank_workload(plan, owner, 1)
        assert w.local_recv_pairs + w.remote_recv_pairs == w.total_rows

    def test_rank_workload_matches_pair_matrix_column(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        matrix = placement.pair_matrix(plan, owner)
        for rank in range(4):
            w = placement.rank_workload(plan, owner, rank)
            np.testing.assert_array_equal(w.recv_pairs_by_src, matrix[:, rank])

    def test_send_pairs_match_matrix_row(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        matrix = placement.pair_matrix(plan, owner)
        for rank in range(4):
            w = placement.rank_workload(plan, owner, rank)
            np.testing.assert_array_equal(w.send_pairs_by_dst, matrix[rank, :])

    def test_pairs_by_src_expert_totals(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        w = placement.rank_workload(plan, owner, 2)
        np.testing.assert_array_equal(w.pairs_by_src_expert.sum(axis=0), w.expert_rows)

    def test_local_experts_identity(self):
        placement = self.make()
        plan, owner = self.make_plan_owner()
        w = placement.rank_workload(plan, owner, 3)
        assert w.local_experts == (6, 7)

    def test_plan_mismatch_rejected(self):
        placement = self.make(experts=8)
        plan, owner = self.make_plan_owner(experts=4)
        with pytest.raises(ValueError):
            placement.pair_matrix(plan, owner)

    def test_owner_out_of_range_rejected(self):
        placement = self.make()
        plan, _ = self.make_plan_owner()
        bad_owner = np.full(plan.num_tokens, 7)
        with pytest.raises(ValueError):
            placement.pair_matrix(plan, bad_owner)

    def test_indivisible_experts_rejected(self):
        with pytest.raises(ValueError):
            ExpertPlacement(ParallelStrategy(tp_size=1, ep_size=3), 8)
