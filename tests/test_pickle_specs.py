"""Pickle round-trips for every spec type the grids are built from.

``executor="process"`` ships specs to worker processes via pickle, so
every ``*Spec`` (and the frozen event/scenario dataclasses they embed)
must survive ``pickle.loads(pickle.dumps(spec))`` with equality and an
identical fingerprint — otherwise a process-based sweep could silently
run a different experiment than the serial path.
"""

import pickle

import pytest

from repro import (
    MIXTRAL_8X7B,
    AutoscalerSpec,
    BrownoutEvent,
    DegradeEvent,
    ExperimentSpec,
    FailureEvent,
    FaultPlan,
    FleetScenario,
    FleetSpec,
    MigrationSpec,
    ParallelStrategy,
    ReplicaSpec,
    ResilienceSpec,
    Scenario,
    ServeScenario,
    ServeSpec,
    StragglerSpec,
    TraceSpec,
    h800_node,
)
from repro.hw.multinode import IB_400G
from repro.hw.presets import NVLINK_H800
from repro.obs.manifest import fingerprint_obj

CLUSTER = h800_node()
STRATEGY = ParallelStrategy(1, 8)

STRAGGLERS = StragglerSpec.slow_rank(8, rank=3, compute_mult=1.7, comm_mult=1.2)
TRACE = TraceSpec(kind="bursty", rps=120, duration_s=4, seed=3)
FAULTS = FaultPlan(
    crashes=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),),
    degrades=(
        DegradeEvent(
            replica=1, t0_ms=200.0, t1_ms=800.0, compute_mult=2.0, comm_mult=1.5
        ),
    ),
    brownouts=(BrownoutEvent(t0_ms=100.0, t1_ms=400.0, mult=3.0),),
)

SPECS = [
    STRAGGLERS,
    StragglerSpec.degraded_link(8, rank=2, link=IB_400G, baseline=NVLINK_H800),
    TRACE,
    TraceSpec(kind="replay", arrivals_ms=(0.0, 10.0, 250.0)),
    FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),
    DegradeEvent(replica=1, t0_ms=200.0, t1_ms=800.0, compute_mult=2.0),
    BrownoutEvent(t0_ms=100.0, t1_ms=400.0, mult=3.0),
    FAULTS,
    ResilienceSpec(timeout_ms=1500.0, max_retries=2, shed_factor=2.0),
    MigrationSpec(messages_per_seq=4),
    AutoscalerSpec(min_replicas=1, warmup_ms=500.0),
    ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=2, stragglers=STRAGGLERS),
    Scenario(
        config=MIXTRAL_8X7B,
        cluster=CLUSTER,
        strategy=STRATEGY,
        tokens=2048,
        imbalance_std=0.3,
        seed=1,
        overlap_policy="cross_layer",
        stragglers=STRAGGLERS,
    ),
    ServeScenario(
        config=MIXTRAL_8X7B,
        cluster=CLUSTER,
        strategy=STRATEGY,
        trace=TRACE,
        policy="spf",
        stragglers=STRAGGLERS,
    ),
    FleetScenario(
        config=MIXTRAL_8X7B,
        replicas=(ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=3),),
        trace=TRACE,
        router="least_queue",
        autoscaler=AutoscalerSpec(min_replicas=1, warmup_ms=500.0),
        faults=FAULTS,
        resilience=ResilienceSpec(timeout_ms=1500.0, max_retries=1),
        migration=MigrationSpec(),
    ),
    ExperimentSpec.grid(
        models="mixtral",
        clusters="h800",
        strategies="sweep",
        tokens=(1024, 2048),
        seeds=(0, 1),
        systems=("comet", "tutel"),
    ),
    ServeSpec.grid(
        traces=TRACE, systems=("comet", "megatron-cutlass"), policies="spf"
    ),
    FleetSpec.grid(traces=TRACE, replicas=2, systems="comet"),
]


@pytest.mark.parametrize("spec", SPECS, ids=lambda s: type(s).__name__)
def test_round_trip_equal_with_identical_fingerprint(spec):
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert type(clone) is type(spec)
    assert fingerprint_obj(clone) == fingerprint_obj(spec)


def test_straggler_fingerprint_survives_round_trip():
    clone = pickle.loads(pickle.dumps(STRAGGLERS))
    assert clone.fingerprint() == STRAGGLERS.fingerprint()


def test_round_tripped_experiment_spec_runs_identically():
    spec = ExperimentSpec.grid(
        models="mixtral", clusters="h800", strategies=STRATEGY,
        tokens=1024, systems=("comet",),
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.run().to_json() == spec.run().to_json()
