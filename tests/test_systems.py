"""Unit and integration tests for the five MoE execution systems."""

import numpy as np
import pytest

from repro.hw import h800_node, l20_node
from repro.moe import (
    MIXTRAL_8X7B,
    QWEN2_MOE,
    ExpertWeights,
    reference_moe_forward,
)
from repro.parallel import ParallelStrategy
from repro.runtime import compare_systems, make_workload
from repro.systems import (
    Comet,
    FasterMoE,
    MegatronCutlass,
    MegatronTE,
    Tutel,
    UnsupportedWorkload,
)

CLUSTER = h800_node()


def workload(tp=1, ep=8, tokens=8192, std=0.0, config=MIXTRAL_8X7B, seed=0):
    return make_workload(
        config, h800_node(), ParallelStrategy(tp, ep), tokens,
        imbalance_std=std, seed=seed,
    )


class TestLayerTimingInvariants:
    @pytest.mark.parametrize(
        "system",
        [MegatronCutlass(), MegatronTE(), FasterMoE(), Tutel(), Comet()],
        ids=lambda s: s.name,
    )
    def test_segments_non_negative_and_consistent(self, system):
        t = system.time_layer(workload())
        assert t.total_us > 0
        assert t.exposed_comm_us <= t.comm_us + 1e-6
        assert 0.0 <= t.hidden_comm_fraction <= 1.0
        assert t.breakdown().keys() == {
            "gating", "layer0-comm", "layer0-comp",
            "activation", "layer1-comp", "layer1-comm",
        }

    def test_exposed_cannot_exceed_standalone(self):
        from repro.systems import LayerTiming

        with pytest.raises(ValueError):
            LayerTiming(
                system="x", gate_us=0, layer0_comm_us=10, layer0_comp_us=0,
                activation_us=0, layer1_comp_us=0, layer1_comm_us=0, host_us=0,
                exposed_layer0_comm_us=20, exposed_layer1_comm_us=0,
            )

    def test_negative_segment_rejected(self):
        from repro.systems import LayerTiming

        with pytest.raises(ValueError):
            LayerTiming(
                system="x", gate_us=-1, layer0_comm_us=0, layer0_comp_us=0,
                activation_us=0, layer1_comp_us=0, layer1_comm_us=0, host_us=0,
                exposed_layer0_comm_us=0, exposed_layer1_comm_us=0,
            )


class TestBaselines:
    def test_megatron_hides_nothing(self):
        t = MegatronCutlass().time_layer(workload())
        assert t.hidden_comm_fraction == 0.0
        assert t.exposed_comm_us == t.comm_us

    def test_te_slower_than_cutlass(self):
        """TE adds API overhead on top of an identical schedule."""
        w = workload()
        assert (
            MegatronTE().time_layer(w).total_us
            > MegatronCutlass().time_layer(w).total_us
        )

    def test_fastermoe_hides_some_comm(self):
        t = FasterMoE().time_layer(workload())
        assert 0.0 < t.hidden_comm_fraction < 1.0

    def test_fastermoe_rejects_tensor_parallel(self):
        system = FasterMoE()
        assert not system.supports(workload(tp=2, ep=4))
        with pytest.raises(UnsupportedWorkload):
            system.time_layer(workload(tp=2, ep=4))

    def test_tutel_hides_more_than_fastermoe(self):
        """Paper Figure 11: Tutel 68.6% vs FasterMoE 29.2% hidden."""
        w = workload(tokens=16384)
        tutel = Tutel().time_layer(w)
        faster = FasterMoE().time_layer(w)
        assert tutel.hidden_comm_fraction > faster.hidden_comm_fraction

    def test_tutel_supports_tensor_parallel(self):
        t = Tutel().time_layer(workload(tp=4, ep=2))
        assert t.total_us > 0

    def test_fastermoe_host_overhead_grows_with_experts(self):
        """The Qwen2 effect: many small experts mean many kernel launches."""
        mixtral = FasterMoE().time_layer(workload(config=MIXTRAL_8X7B))
        qwen = FasterMoE().time_layer(workload(config=QWEN2_MOE))
        assert qwen.host_us > mixtral.host_us

    def test_chunked_gemm_less_efficient(self):
        """FasterMoE's two half GEMMs exceed Megatron's single GEMM."""
        w = workload()
        assert (
            FasterMoE().time_layer(w).comp_us
            > MegatronCutlass().time_layer(w).comp_us
        )


class TestComet:
    def test_hides_most_communication(self):
        """Paper: 86.5% average hidden on this shape."""
        t = Comet().time_layer(workload(tokens=16384))
        assert t.hidden_comm_fraction > 0.8

    def test_beats_all_baselines(self):
        w = workload(tokens=16384)
        comet = Comet().time_layer(w).total_us
        for system in (MegatronCutlass(), MegatronTE(), FasterMoE(), Tutel()):
            assert comet < system.time_layer(w).total_us

    def test_speedup_in_paper_band(self):
        """Single-layer speedup 1.28x-2.37x vs the baselines (Figure 10)."""
        w = workload(tokens=16384)
        comet = Comet().time_layer(w).total_us
        for system in (MegatronCutlass(), MegatronTE(), FasterMoE(), Tutel()):
            speedup = system.time_layer(w).total_us / comet
            assert 1.0 < speedup < 3.0

    def test_minimal_host_overhead(self):
        w = workload()
        comet = Comet().time_layer(w)
        megatron = MegatronCutlass().time_layer(w)
        assert comet.host_us < megatron.host_us

    def test_supports_all_parallelisms(self):
        for tp, ep in ((1, 8), (2, 4), (4, 2), (8, 1)):
            t = Comet().time_layer(workload(tp=tp, ep=ep))
            assert t.total_us > 0

    def test_rescheduling_ablation_hurts(self):
        w = workload(tokens=16384)
        with_resched = Comet(reschedule=True).time_layer(w).total_us
        without = Comet(reschedule=False).time_layer(w).total_us
        assert with_resched <= without + 1e-6

    def test_specialization_ablation_hurts(self):
        w = workload(tokens=16384)
        specialized = Comet(specialized=True).time_layer(w).total_us
        vertical = Comet(specialized=False).time_layer(w).total_us
        assert specialized < vertical

    def test_fixed_nc_respected(self):
        system = Comet(fixed_nc=10)
        assert system.division_point(workload(), layer=0) == 10

    def test_adaptive_nc_cached(self):
        system = Comet()
        w = workload()
        nc1 = system.division_point(w, layer=1)
        nc2 = system.division_point(w, layer=1)
        assert nc1 == nc2
        assert len(system._profiles) == 1

    def test_single_gpu_needs_no_comm_blocks(self):
        w = make_workload(
            MIXTRAL_8X7B, h800_node(1), ParallelStrategy(1, 1), 1024
        )
        assert Comet().division_point(w, layer=0) == 0

    def test_adaptive_nc_differs_across_parallelism(self):
        """Figure 8: the optimal division point moves with the strategy."""
        system = Comet()
        nc_ep = system.division_point(workload(tp=1, ep=8, tokens=16384), layer=1)
        nc_tp = system.division_point(workload(tp=8, ep=1, tokens=16384), layer=1)
        assert nc_ep != nc_tp


class TestNumericExecution:
    """Every system's schedule must compute exactly the reference output."""

    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.config = MIXTRAL_8X7B
        # Tiny shapes: numerics only care about the schedule structure.
        from repro.moe.config import MoEConfig

        self.small = MoEConfig("small", 2, 8, 2, hidden_size=32, ffn_size=64)
        self.w = make_workload(
            self.small, h800_node(), ParallelStrategy(1, 8), 256, seed=1
        )
        self.weights = ExpertWeights.init(8, 32, 64, rng=self.rng)
        self.x = self.rng.normal(size=(256, 32)).astype(np.float32)
        self.reference = reference_moe_forward(self.x, self.w.plan, self.weights)

    @pytest.mark.parametrize(
        "system",
        [MegatronCutlass(), MegatronTE(), FasterMoE(), Tutel(), Comet(),
         Comet(reschedule=False)],
        ids=lambda s: getattr(s, "name", str(s)),
    )
    def test_execute_matches_reference(self, system):
        out = system.execute(self.x, self.w, self.weights)
        np.testing.assert_allclose(out, self.reference, rtol=1e-4, atol=1e-5)

    def test_comet_execute_uses_reschedule(self):
        """The COMET path really is the rescheduled one (not a passthrough):
        its layer0 row order differs from token order."""
        from repro.tensor import layer0_rescheduled_forward

        acts = layer0_rescheduled_forward(
            self.x, self.w.plan, self.weights, self.w.owner, local_rank=3
        )
        any_reordered = any(
            token_ids.size > 1 and (np.diff(token_ids) < 0).any()
            for token_ids, _, _ in acts
        )
        assert any_reordered


class TestCompareSystems:
    def test_unsupported_systems_omitted(self):
        w = workload(tp=2, ep=4)
        results = compare_systems(
            [MegatronCutlass(), FasterMoE(), Comet()], w
        )
        assert set(results) == {"Megatron-Cutlass", "Comet"}

    def test_all_present_pure_ep(self):
        results = compare_systems(
            [MegatronCutlass(), MegatronTE(), FasterMoE(), Tutel(), Comet()],
            workload(),
        )
        assert len(results) == 5


class TestL20Cluster:
    def test_comet_still_wins_on_pcie(self):
        """Figure 14 right: the advantage persists on the slow fabric."""
        w = make_workload(
            MIXTRAL_8X7B.with_experts(8, topk=4),
            l20_node(),
            ParallelStrategy(1, 8),
            8192,
        )
        comet = Comet().time_layer(w).total_us
        for system in (MegatronCutlass(), Tutel()):
            assert comet < system.time_layer(w).total_us

    def test_l20_layer_slower_than_h800(self):
        w_h = workload(tokens=8192)
        w_l = make_workload(
            MIXTRAL_8X7B, l20_node(), ParallelStrategy(1, 8), 8192
        )
        assert (
            Comet().time_layer(w_l).total_us > Comet().time_layer(w_h).total_us
        )
