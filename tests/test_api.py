"""Tests for the declarative experiment API (repro.api)."""

import json

import pytest

from repro import (
    MIXTRAL_8X7B,
    Comet,
    ExperimentSpec,
    MegatronCutlass,
    ParallelStrategy,
    ResultSet,
    Scenario,
    SystemRegistry,
    UnknownNameError,
    h800_node,
    register_system,
)
from repro.api import CLUSTER_REGISTRY, MODEL_REGISTRY, SYSTEM_REGISTRY
from repro.api.scenario import default_system_names
from repro.systems import ALL_SYSTEMS


def small_scenario(tp=1, ep=8, tokens=2048, **kwargs):
    return Scenario(
        config=MIXTRAL_8X7B,
        cluster=h800_node(),
        strategy=ParallelStrategy(tp_size=tp, ep_size=ep),
        tokens=tokens,
        **kwargs,
    )


class TestSystemRegistry:
    def test_builtins_registered(self):
        for name in ("comet", "tutel", "fastermoe", "megatron-te", "megatron-cutlass"):
            assert name in SYSTEM_REGISTRY

    def test_create_returns_fresh_instances(self):
        a = SYSTEM_REGISTRY.create("comet")
        b = SYSTEM_REGISTRY.create("comet")
        assert isinstance(a, Comet)
        assert a is not b

    def test_create_forwards_kwargs(self):
        system = SYSTEM_REGISTRY.create("comet", fixed_nc=8)
        assert system.fixed_nc == 8

    def test_lookup_is_case_insensitive_and_alias_aware(self):
        assert SYSTEM_REGISTRY.resolve("Comet") == "comet"
        assert SYSTEM_REGISTRY.resolve("Megatron-TE") == "megatron-te"

    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(UnknownNameError) as err:
            SYSTEM_REGISTRY.get("not-a-system")
        message = str(err.value)
        assert "not-a-system" in message
        for name in SYSTEM_REGISTRY.names():
            assert name in message

    def test_register_system_decorator(self):
        registry = SystemRegistry()

        @register_system("custom", registry=registry)
        class CustomSystem(MegatronCutlass):
            name = "Custom-System"

        assert CustomSystem.slug == "custom"
        assert registry.resolve("Custom-System") == "custom"
        assert isinstance(registry.create("custom"), CustomSystem)

    def test_duplicate_registration_rejected(self):
        registry = SystemRegistry()
        registry.register("x", Comet)
        with pytest.raises(ValueError):
            registry.register("X", Comet)

    def test_alias_shadowing_registered_name_rejected(self):
        registry = SystemRegistry()
        registry.register("comet", Comet)
        with pytest.raises(ValueError):
            # A plugin whose display name collides with an existing slug
            # must fail loudly instead of silently losing the alias.
            registry.register("my-comet", MegatronCutlass, aliases=("Comet",))

    def test_slug_set_on_builtin_classes(self):
        assert Comet.slug == "comet"
        assert default_system_names() == tuple(cls.slug for cls in ALL_SYSTEMS)

    def test_model_and_cluster_registries(self):
        assert MODEL_REGISTRY.get("mixtral") is MIXTRAL_8X7B
        assert MODEL_REGISTRY.get("Mixtral-8x7B") is MIXTRAL_8X7B
        assert CLUSTER_REGISTRY.get("h800")().world_size == 8


class TestScenario:
    def test_validates_world_size(self):
        with pytest.raises(ValueError):
            small_scenario(tp=1, ep=4)

    def test_validates_token_divisibility(self):
        with pytest.raises(ValueError):
            small_scenario(tokens=2047)

    def test_hashable_and_equal(self):
        assert small_scenario() == small_scenario()
        assert hash(small_scenario()) == hash(small_scenario())
        assert small_scenario(seed=1) != small_scenario(seed=2)

    def test_label_includes_optional_axes(self):
        label = small_scenario(imbalance_std=0.03, seed=5).label
        assert "std0.03" in label and "seed5" in label
        assert "std" not in small_scenario().label

    def test_build_workload_matches_scenario(self):
        scenario = small_scenario(imbalance_std=0.02, seed=3)
        workload = scenario.build_workload()
        assert workload.total_tokens == scenario.tokens
        assert workload.strategy == scenario.strategy


class TestGridExpansion:
    def test_cartesian_count(self):
        spec = ExperimentSpec.grid(
            models=("mixtral", "phi3.5"),
            strategies=((1, 8), (2, 4)),
            tokens=(2048, 4096),
            seeds=(0, 1),
        )
        assert len(spec.scenarios) == 2 * 2 * 2 * 2

    def test_sweep_strategies_factorise_world(self):
        spec = ExperimentSpec.grid(strategies="sweep", tokens=2048)
        strategies = {(s.strategy.tp_size, s.strategy.ep_size) for s in spec.scenarios}
        assert strategies == {(1, 8), (2, 4), (4, 2), (8, 1)}

    def test_scalars_accepted_on_every_axis(self):
        spec = ExperimentSpec.grid(
            models=MIXTRAL_8X7B, clusters=h800_node(), strategies=(1, 8),
            tokens=2048, imbalance_stds=0.01, seeds=3,
        )
        assert len(spec.scenarios) == 1
        scenario = spec.scenarios[0]
        assert scenario.imbalance_std == 0.01 and scenario.seed == 3

    def test_expansion_order_models_outer_tokens_inner(self):
        spec = ExperimentSpec.grid(
            models=("mixtral", "phi3.5"), strategies=(1, 8), tokens=(2048, 4096)
        )
        keys = [(s.config.name, s.tokens) for s in spec.scenarios]
        assert keys == [
            ("Mixtral-8x7B", 2048),
            ("Mixtral-8x7B", 4096),
            ("Phi-3.5-MoE", 2048),
            ("Phi-3.5-MoE", 4096),
        ]

    def test_unknown_system_rejected_at_grid_time(self):
        with pytest.raises(UnknownNameError):
            ExperimentSpec.grid(systems="warp-drive")

    def test_default_systems_in_paper_order(self):
        spec = ExperimentSpec.grid(tokens=2048, strategies=(1, 8))
        assert spec.system_names() == default_system_names()


class TestRun:
    @pytest.fixture(scope="class")
    def results(self):
        spec = ExperimentSpec.grid(
            models="mixtral", strategies=((1, 8), (2, 4)), tokens=2048
        )
        return spec.run()

    def test_workload_shared_across_systems(self, results):
        for scenario in results.scenarios():
            rows = results.rows_for(scenario)
            assert len(rows) >= 2
            first = rows[0].workload
            assert first is not None
            assert all(row.workload is first for row in rows)

    def test_duplicate_scenarios_collapse_to_one_run(self):
        scenario = small_scenario()
        spec = ExperimentSpec(
            scenarios=(scenario, scenario), systems=("comet", "comet")
        )
        assert len(list(spec.workloads())) == 1
        results = spec.run()
        assert len(results.rows) == 1
        assert len(results.scenarios()) == 1

    def test_matches_direct_execution(self, results):
        scenario = small_scenario()
        direct = MegatronCutlass().time_layer(scenario.build_workload())
        row = results.get(scenario, "Megatron-Cutlass")
        assert row.timing.total_us == pytest.approx(direct.total_us)

    def test_skip_reasons_recorded(self, results):
        assert "FasterMoE" in {s.system for s in results.skips}
        (reason,) = [
            s.reason for s in results.skips
            if s.scenario.strategy.tp_size == 2 and s.system == "FasterMoE"
        ]
        assert "TP2xEP4" in reason
        assert any("FasterMoE" in key for key in results.skipped)

    def test_on_skip_callback(self):
        seen = []
        spec = ExperimentSpec(
            scenarios=(small_scenario(tp=2, ep=4),), systems=("fastermoe",)
        )
        results = spec.run(on_skip=seen.append)
        assert len(results.rows) == 0
        assert len(seen) == 1 and seen[0].system == "FasterMoE"

    def test_model_level_fills_model_timing(self):
        spec = ExperimentSpec(
            scenarios=(small_scenario(),), systems=("comet",)
        )
        results = spec.run(level="model")
        row = results.rows[0]
        assert row.model_timing is not None
        assert row.model_timing.total_ms == pytest.approx(row.value_ms)
        assert row.model_timing.moe.total_us == pytest.approx(row.timing.total_us)

    def test_invalid_level_rejected(self):
        spec = ExperimentSpec(scenarios=(small_scenario(),))
        with pytest.raises(ValueError):
            spec.run(level="galaxy")


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        spec = ExperimentSpec.grid(
            models="mixtral", strategies="sweep", tokens=(2048, 4096)
        )
        return spec.run()

    def test_filter_by_tokens_and_system(self, results):
        narrowed = results.filter(tokens=2048, system="comet")
        assert narrowed.rows
        assert all(
            r.scenario.tokens == 2048 and r.system == "Comet" for r in narrowed
        )

    def test_filter_by_strategy_string(self, results):
        narrowed = results.filter(strategy="TP1xEP8")
        assert narrowed.rows
        assert all(r.scenario.strategy.ep_size == 8 for r in narrowed)

    def test_filter_narrows_skips_and_grid(self, results):
        narrowed = results.filter(tp=1)
        assert all(s.scenario.strategy.tp_size == 1 for s in narrowed.skips)
        assert all(s.strategy.tp_size == 1 for s in narrowed.scenarios())

    def test_best_is_global_minimum(self, results):
        best = results.best()
        assert best.layer_ms == min(r.layer_ms for r in results)

    def test_speedup_over_baseline(self, results):
        speedups = results.speedup_over("Megatron-Cutlass", system="Comet")
        assert len(speedups) == len(results.scenarios())
        assert all(value > 1.0 for value in speedups.values())
        mean = results.mean_speedup_over("Megatron-Cutlass")
        assert mean == pytest.approx(
            sum(speedups.values()) / len(speedups)
        )

    def test_speedup_skips_missing_pairs(self, results):
        # FasterMoE never runs under TP > 1, so those scenarios drop out.
        speedups = results.speedup_over("FasterMoE")
        assert len(speedups) == len(
            [s for s in results.scenarios() if s.strategy.tp_size == 1]
        )

    def test_scenarios_preserve_grid_order(self, results):
        tokens = [s.tokens for s in results.scenarios() if s.strategy.tp_size == 1]
        assert tokens == [2048, 4096]

    def test_to_rows_flat(self, results):
        headers, rows = results.to_rows()
        assert headers[0] == "model" and headers[-1] == "ms"
        assert len(rows) == len(results.rows)

    def test_to_table_pivots_and_marks_skips(self, results):
        headers, rows = results.to_table()
        assert headers.index("FasterMoE") >= 5
        tp2_row = rows[[str(s.strategy) for s in results.scenarios()].index("TP2xEP4")]
        fastermoe_cell = tp2_row[headers.index("FasterMoE")]
        assert fastermoe_cell != fastermoe_cell  # nan marks the skipped bar

    def test_to_json_roundtrip(self, results):
        doc = json.loads(results.to_json())
        assert len(doc["rows"]) == len(results.rows)
        assert len(doc["skipped"]) == len(results.skips)
        first = doc["rows"][0]
        assert first["model"] == "Mixtral-8x7B"
        assert first["timing_us"]["system"] == first["system"]

    def test_empty_resultset(self):
        empty = ResultSet(rows=())
        assert not empty
        with pytest.raises(ValueError):
            empty.best()
