"""Unit tests for the tracer and Chrome-trace export."""

import json

import pytest

from repro.sim import TraceEvent, Tracer


class TestTraceEvent:
    def test_duration(self):
        event = TraceEvent("op", "comp", "lane", 1.0, 4.5)
        assert event.duration == 3.5

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("op", "comp", "lane", 5.0, 4.0)


class TestTracer:
    def test_record_and_lanes(self):
        tracer = Tracer()
        tracer.record("a", "comp", "rank0/sm", 0, 1)
        tracer.record("b", "comm", "rank0/comm", 0, 2)
        assert tracer.lanes() == ["rank0/comm", "rank0/sm"]

    def test_span(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 2, 5)
        tracer.record("b", "comp", "l", 1, 3)
        assert tracer.span() == (1, 5)

    def test_span_empty(self):
        assert Tracer().span() == (0.0, 0.0)

    def test_busy_time_merges_overlaps_same_lane(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 10)
        tracer.record("b", "comp", "l", 5, 15)
        assert tracer.busy_time(lane="l") == 15

    def test_busy_time_adds_across_lanes(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l1", 0, 10)
        tracer.record("b", "comp", "l2", 0, 10)
        assert tracer.busy_time() == 20

    def test_busy_time_category_filter(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 10)
        tracer.record("b", "comm", "l", 20, 25)
        assert tracer.busy_time(category="comm") == 5

    def test_category_breakdown(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 4)
        tracer.record("b", "comm", "l", 4, 10)
        assert tracer.category_breakdown() == {"comm": 6.0, "comp": 4.0}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.record("a", "comp", "l", 0, 1)
        assert tracer.events == []

    def test_chrome_trace_structure(self):
        tracer = Tracer()
        tracer.record("tile", "comp", "rank0/sm", 1.0, 2.0, expert=3)
        doc = tracer.to_chrome_trace()
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert x["ts"] == 1.0 and x["dur"] == 1.0
        assert x["args"] == {"expert": 3}

    def test_save_chrome_trace_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record("tile", "comp", "lane", 0, 1)
        path = tmp_path / "trace.json"
        tracer.save_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_merge_with_prefix(self):
        a, b = Tracer(), Tracer()
        b.record("x", "comp", "sm", 0, 1)
        a.merge(b, lane_prefix="rank1/")
        assert a.lanes() == ["rank1/sm"]

    def test_merge_respects_enabled(self):
        a, b = Tracer(), Tracer()
        a.enabled = False
        b.record("x", "comp", "sm", 0, 1)
        b.counter("q", 0.0, depth=1)
        b.instant("hit", 0.5)
        b.flow_begin("f", 0.0, 1)
        a.merge(b)
        assert a.events == [] and a.counters == []
        assert a.instants == [] and a.flows == []

    def test_merge_copies_args(self):
        a, b = Tracer(), Tracer()
        b.record("x", "comp", "sm", 0, 1, expert=3)
        b.counter("q", 0.0, depth=1)
        a.merge(b)
        b.events[0].args["expert"] = 99
        b.counters[0].values["depth"] = 99
        assert a.events[0].args == {"expert": 3}
        assert a.counters[0].values == {"depth": 1}

    def test_merge_process_prefix(self):
        a, b = Tracer(), Tracer()
        b.record("x", "comp", "sm", 0, 1, process="replica0")
        a.merge(b, process_prefix="fleet/")
        assert a.events[0].process == "fleet/replica0"


class TestTracerExtendedPhases:
    def test_counter_export(self):
        tracer = Tracer()
        tracer.counter("queue", 1.0, depth=3, tokens=128)
        doc = tracer.to_chrome_trace()
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "queue"
        assert counters[0]["args"] == {"depth": 3, "tokens": 128}

    def test_instant_export_and_scope_validation(self):
        tracer = Tracer()
        tracer.instant("fail", 5.0, scope="p", replica=1)
        doc = tracer.to_chrome_trace()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["s"] == "p"
        assert instants[0]["args"] == {"replica": 1}
        with pytest.raises(ValueError):
            tracer.instant("bad", 0.0, scope="x")

    def test_flow_pair_export(self):
        tracer = Tracer()
        tracer.flow_begin("dispatch", 1.0, 7, lane="router")
        tracer.flow_end("dispatch", 2.0, 7, lane="engine")
        doc = tracer.to_chrome_trace()
        start = [e for e in doc["traceEvents"] if e["ph"] == "s"][0]
        finish = [e for e in doc["traceEvents"] if e["ph"] == "f"][0]
        assert start["id"] == finish["id"] == 7
        assert "bp" not in start and finish["bp"] == "e"

    def test_processes_get_distinct_pids(self):
        tracer = Tracer()
        tracer.record("a", "comp", "sm", 0, 1, process="replica0")
        tracer.record("b", "comp", "sm", 0, 1, process="replica1")
        doc = tracer.to_chrome_trace()
        xs = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(xs) == 2
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"replica0", "replica1"}

    def test_default_process_is_pid_zero_and_unnamed(self):
        tracer = Tracer()
        tracer.record("a", "comp", "sm", 0, 1)
        tracer.record("b", "comp", "sm", 0, 1, process="replica0")
        assert tracer.processes() == ["", "replica0"]
        doc = tracer.to_chrome_trace()
        default_x = [
            e for e in doc["traceEvents"] if e["ph"] == "X" and e["pid"] == 0
        ]
        assert len(default_x) == 1
        named = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {e["args"]["name"] for e in named} == {"replica0"}

    def test_disabled_suppresses_all_record_types(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.counter("q", 0.0, depth=1)
        tracer.instant("i", 0.0)
        tracer.flow_begin("f", 0.0, 1)
        tracer.flow_end("f", 1.0, 1)
        assert tracer.counters == [] and tracer.instants == []
        assert tracer.flows == []

    def test_busy_time_separates_processes(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 10, process="p0")
        tracer.record("b", "comp", "l", 0, 10, process="p1")
        assert tracer.busy_time(lane="l") == 20
