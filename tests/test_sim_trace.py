"""Unit tests for the tracer and Chrome-trace export."""

import json

import pytest

from repro.sim import TraceEvent, Tracer


class TestTraceEvent:
    def test_duration(self):
        event = TraceEvent("op", "comp", "lane", 1.0, 4.5)
        assert event.duration == 3.5

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("op", "comp", "lane", 5.0, 4.0)


class TestTracer:
    def test_record_and_lanes(self):
        tracer = Tracer()
        tracer.record("a", "comp", "rank0/sm", 0, 1)
        tracer.record("b", "comm", "rank0/comm", 0, 2)
        assert tracer.lanes() == ["rank0/comm", "rank0/sm"]

    def test_span(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 2, 5)
        tracer.record("b", "comp", "l", 1, 3)
        assert tracer.span() == (1, 5)

    def test_span_empty(self):
        assert Tracer().span() == (0.0, 0.0)

    def test_busy_time_merges_overlaps_same_lane(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 10)
        tracer.record("b", "comp", "l", 5, 15)
        assert tracer.busy_time(lane="l") == 15

    def test_busy_time_adds_across_lanes(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l1", 0, 10)
        tracer.record("b", "comp", "l2", 0, 10)
        assert tracer.busy_time() == 20

    def test_busy_time_category_filter(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 10)
        tracer.record("b", "comm", "l", 20, 25)
        assert tracer.busy_time(category="comm") == 5

    def test_category_breakdown(self):
        tracer = Tracer()
        tracer.record("a", "comp", "l", 0, 4)
        tracer.record("b", "comm", "l", 4, 10)
        assert tracer.category_breakdown() == {"comm": 6.0, "comp": 4.0}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        tracer.enabled = False
        tracer.record("a", "comp", "l", 0, 1)
        assert tracer.events == []

    def test_chrome_trace_structure(self):
        tracer = Tracer()
        tracer.record("tile", "comp", "rank0/sm", 1.0, 2.0, expert=3)
        doc = tracer.to_chrome_trace()
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X"}
        x = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert x["ts"] == 1.0 and x["dur"] == 1.0
        assert x["args"] == {"expert": 3}

    def test_save_chrome_trace_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record("tile", "comp", "lane", 0, 1)
        path = tmp_path / "trace.json"
        tracer.save_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_merge_with_prefix(self):
        a, b = Tracer(), Tracer()
        b.record("x", "comp", "sm", 0, 1)
        a.merge(b, lane_prefix="rank1/")
        assert a.lanes() == ["rank1/sm"]
