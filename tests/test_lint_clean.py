"""Tier-1 gate: the shipped source tree is lint-clean.

``repro lint src/repro`` exiting 0 is the contract the CI lint job
enforces; this test is the same assertion in-process, so a finding
introduced anywhere in ``src/repro`` fails the ordinary test run too.
"""

from pathlib import Path

import repro
from repro.lint import RULE_REGISTRY, run_lint

PACKAGE_DIR = Path(repro.__file__).parent

EXPECTED_RULES = {
    "fingerprint-completeness",
    "spec-hygiene",
    "determinism",
    "export-gating",
    "registry-consistency",
    "fast-slow-parity",
}


def test_all_six_rules_registered():
    assert EXPECTED_RULES <= set(RULE_REGISTRY.names())


def test_source_tree_is_lint_clean():
    report = run_lint([PACKAGE_DIR])
    assert report.file_count >= 90, "package scan looks truncated"
    assert not report.errors, report.errors
    assert report.ok, "\n" + "\n".join(f.render() for f in report.findings)


def test_every_suppression_carries_a_justification():
    report = run_lint([PACKAGE_DIR])
    assert report.suppressed, "the known intentional exclusions vanished"
    for finding in report.suppressed:
        assert finding.justification, finding.render()


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    from repro.cli import main

    assert main(["lint", str(PACKAGE_DIR)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
