"""FleetSpec grid expansion, result filtering, export-schema gating,
parallel execution, and disaggregated pools."""

import csv
import io
import json

import pytest

from repro import FleetSpec, TraceSpec, perf
from repro.fleet import AutoscalerSpec, FailureEvent, FleetScenario, ReplicaSpec
from repro.hw.presets import h800_node
from repro.moe.config import MIXTRAL_8X7B
from repro.parallel.strategy import ParallelStrategy

TRACE = TraceSpec(kind="poisson", rps=20, duration_s=3, seed=0)
CLUSTER = h800_node()
STRATEGY = ParallelStrategy(tp_size=1, ep_size=8)


class TestGridExpansion:
    def test_cartesian_product_counts(self):
        spec = FleetSpec.grid(
            traces=TRACE,
            replicas=(1, 2),
            routers=("round_robin", "least_queue"),
            systems=("comet", "tutel"),
        )
        assert len(spec.scenarios) == 4  # 2 replica counts x 2 routers
        assert len(spec.systems) == 2

    def test_replicas_axis_int(self):
        spec = FleetSpec.grid(traces=TRACE, replicas=3, systems="comet")
        scenario = spec.scenarios[0]
        assert scenario.num_replicas == 3
        assert all(r.role == "unified" for r in scenario.expand_replicas())

    def test_replicas_axis_disagg_string(self):
        spec = FleetSpec.grid(traces=TRACE, replicas="2p+1d", systems="comet")
        roles = [r.role for r in spec.scenarios[0].expand_replicas()]
        assert roles == ["prefill", "prefill", "decode"]

    def test_replicas_axis_heterogeneous_tuple(self):
        # A sequence of ReplicaSpecs is ONE heterogeneous pool, not an
        # axis of single-replica scenarios.
        pool = (
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=2),
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=1),
        )
        spec = FleetSpec.grid(traces=TRACE, replicas=pool, systems="comet")
        assert len(spec.scenarios) == 1
        assert spec.scenarios[0].num_replicas == 3

    def test_scenario_labels_unique(self):
        spec = FleetSpec.grid(
            traces=TRACE,
            replicas=(1, 2),
            routers=("round_robin", "power_of_two"),
            systems="comet",
        )
        labels = [s.label for s in spec.scenarios]
        assert len(labels) == len(set(labels))


class TestResultFiltering:
    @pytest.fixture(scope="class")
    def results(self):
        return FleetSpec.grid(
            traces=TRACE,
            replicas=(1, 2),
            routers=("round_robin", "least_queue"),
            systems="comet",
        ).run(workers=2)

    def test_filter_by_router(self, results):
        sub = results.filter(router="least_queue")
        assert len(sub.reports) == 2
        assert all(r.router == "least_queue" for r in sub.reports)

    def test_filter_by_replicas(self, results):
        sub = results.filter(replicas=2)
        assert len(sub.reports) == 2
        assert all(r.num_replicas == 2 for r in sub.reports)

    def test_filter_composes(self, results):
        sub = results.filter(router="round_robin", replicas=1)
        assert len(sub.reports) == 1

    def test_goodput_by_router(self, results):
        table = results.goodput_by_router()
        assert set(table) == {"round_robin", "least_queue"}


class TestExportSchemaGating:
    """One predicate decides the optional columns in EVERY export."""

    def run_single(self):
        return FleetSpec.grid(traces=TRACE, systems="comet").run()

    def run_swept(self):
        return FleetSpec.grid(
            traces=TRACE,
            replicas=(1, 2),
            routers=("round_robin", "least_queue"),
            systems="comet",
        ).run()

    def test_unswept_exports_omit_router_and_replica_columns(self):
        results = self.run_single()
        headers, _ = results.to_rows()
        assert "router" not in headers and "replicas" not in headers
        doc = json.loads(results.to_json())
        assert "router" not in doc["reports"][0]
        assert "replicas" not in doc["reports"][0]
        first_line = results.to_csv().splitlines()[0]
        assert "router" not in first_line and "replicas" not in first_line

    def test_swept_exports_all_carry_both_columns(self):
        results = self.run_swept()
        headers, rows = results.to_rows()
        assert "router" in headers and "replicas" in headers
        doc = json.loads(results.to_json())
        assert all("router" in r and "replicas" in r for r in doc["reports"])
        reader = csv.DictReader(io.StringIO(results.to_csv()))
        for row in reader:
            assert row["router"] in {"round_robin", "least_queue"}
            assert row["replicas"] in {"1", "2"}

    def test_csv_and_rows_agree(self):
        results = self.run_swept()
        headers, rows = results.to_rows()
        reader = csv.reader(io.StringIO(results.to_csv()))
        assert next(reader) == headers
        assert len(list(reader)) == len(rows)


class TestParallelExecution:
    def test_workers_byte_identical_to_serial(self):
        spec = FleetSpec.grid(
            traces=TRACE,
            replicas=(1, 2),
            routers=("round_robin", "least_queue"),
            systems=("comet", "tutel"),
        )
        perf.clear_caches()
        serial = spec.run()
        perf.clear_caches()
        threaded = spec.run(workers=4)
        assert threaded.to_json() == serial.to_json()
        assert threaded.to_csv() == serial.to_csv()

    def test_step_cost_cache_shared_across_replicas(self):
        perf.clear_caches()
        FleetSpec.grid(traces=TRACE, replicas=4, systems="comet").run()
        stats = perf.cache_stats()["step-cost"]
        # 4 identical replicas -> 1 model build + 3 cache hits.
        assert stats["hits"] >= 3


class TestDisaggregatedPools:
    def test_disagg_fleet_serves_everything(self):
        report = (
            FleetSpec.grid(traces=TRACE, replicas="1p+1d", systems="comet")
            .run()
            .reports[0]
        )
        assert report.unserved == 0
        assert report.num_requests == report.offered > 0
        roles = {s.role for s in report.replica_stats}
        assert roles == {"prefill", "decode"}
        # Both pools did real work.
        for stat in report.replica_stats:
            assert stat.requests > 0 and stat.busy_ms > 0

    def test_disagg_records_causally_ordered(self):
        report = (
            FleetSpec.grid(traces=TRACE, replicas="2p+2d", systems="comet")
            .run()
            .reports[0]
        )
        for r in report.records:
            assert r.arrival_ms <= r.first_token_ms <= r.completion_ms


class TestSpecValidation:
    def kwargs(self, **overrides):
        base = dict(
            config=MIXTRAL_8X7B,
            replicas=(ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=2),),
        )
        base.update(overrides)
        return base

    def test_autoscaler_rejects_disaggregated_pools(self):
        replicas = (
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, role="prefill"),
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, role="decode"),
        )
        with pytest.raises(ValueError, match="autoscal"):
            FleetScenario(
                **self.kwargs(replicas=replicas, autoscaler=AutoscalerSpec())
            )

    def test_autoscaler_min_bounded_by_fleet_size(self):
        with pytest.raises(ValueError, match="min_replicas"):
            FleetScenario(
                **self.kwargs(autoscaler=AutoscalerSpec(min_replicas=5))
            )

    def test_prefill_only_pool_rejected(self):
        replicas = (
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, role="prefill"),
        )
        with pytest.raises(ValueError, match="decode"):
            FleetScenario(**self.kwargs(replicas=replicas))

    def test_replica_spec_count_positive(self):
        with pytest.raises(ValueError):
            ReplicaSpec(cluster=CLUSTER, strategy=STRATEGY, count=0)

    def test_unknown_scheduling_policy_rejected(self):
        with pytest.raises(ValueError, match="polic"):
            FleetScenario(**self.kwargs(policy="lifo"))

    def test_failure_event_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(replica=0, fail_ms=-1.0)
