"""Unit tests for shared tensors and dependency resolving (paper §3.1)."""

import pytest

from repro.tensor import (
    AccessSpec,
    DependencyError,
    OpKind,
    SharedTensor,
    all2all_dispatch,
    group_gemm_consumer,
    group_gemm_producer,
    resolve_decomposition,
    topk_combine_consumer,
)
from repro.tensor.shared_tensor import layer0_shared_tensor, layer1_shared_tensor


class TestAccessSpecs:
    def test_dispatch_is_fully_independent(self):
        spec = all2all_dispatch()
        assert spec.independent_dims == {"M", "N"}
        assert spec.kind == OpKind.COMMUNICATION

    def test_gemm_consumer_couples_n(self):
        """The GEMM's reduction dimension cannot be decomposed."""
        spec = group_gemm_consumer()
        assert spec.independent_dims == {"M"}
        assert spec.coupled_dims == {"N"}

    def test_topk_combine_couples_m(self):
        """Top-k reduction couples a token's expert copies along M."""
        spec = topk_combine_consumer()
        assert spec.independent_dims == {"N"}
        assert spec.coupled_dims == {"M"}

    def test_dim_cannot_be_both(self):
        with pytest.raises(ValueError):
            AccessSpec(
                "bad",
                OpKind.GEMM,
                independent_dims=frozenset({"M"}),
                coupled_dims=frozenset({"M"}),
            )

    def test_unknown_dim_rejected(self):
        with pytest.raises(ValueError):
            AccessSpec(
                "bad",
                OpKind.GEMM,
                independent_dims=frozenset({"Z"}),
                coupled_dims=frozenset(),
            )


class TestDependencyResolving:
    """Paper §3.1.1: layer0 decomposes along M, layer1 along N."""

    def test_layer0_resolves_to_m(self):
        assert resolve_decomposition(layer0_shared_tensor(1024, 4096)) == "M"

    def test_layer1_resolves_to_n(self):
        assert resolve_decomposition(layer1_shared_tensor(1024, 4096)) == "N"

    def test_fully_coupled_consumer_rejected(self):
        tensor = SharedTensor(
            m_extent=16,
            n_extent=16,
            producer=all2all_dispatch(),
            consumer=AccessSpec(
                "blocked",
                OpKind.GEMM,
                independent_dims=frozenset(),
                coupled_dims=frozenset({"M", "N"}),
            ),
        )
        with pytest.raises(DependencyError):
            resolve_decomposition(tensor)

    def test_m_preferred_when_both_free(self):
        tensor = SharedTensor(
            m_extent=16,
            n_extent=16,
            producer=all2all_dispatch(),
            consumer=all2all_dispatch(),
        )
        assert resolve_decomposition(tensor) == "M"

    def test_producer_constraint_applies(self):
        """Even if the consumer is free along M, a producer coupled along M
        blocks that decomposition."""
        tensor = SharedTensor(
            m_extent=16,
            n_extent=16,
            producer=topk_combine_consumer(),  # independent along N only
            consumer=group_gemm_producer(),  # independent along both
        )
        assert resolve_decomposition(tensor) == "N"

    def test_invalid_extents(self):
        with pytest.raises(ValueError):
            SharedTensor(-1, 4, all2all_dispatch(), group_gemm_consumer())
        with pytest.raises(ValueError):
            SharedTensor(4, 0, all2all_dispatch(), group_gemm_consumer())

    def test_shape_property(self):
        assert layer0_shared_tensor(64, 32).shape == (64, 32)
