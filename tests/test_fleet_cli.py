"""`repro fleet` CLI: table output, exports, error paths, cache report."""

import json

from repro.cli import main

FAST = ["--rps", "20", "--duration", "3", "--systems", "comet"]


class TestFleetCommand:
    def test_single_replica_smoke(self, capsys):
        assert main(["fleet", *FAST]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "Comet" in out

    def test_router_sweep_table_has_router_column(self, capsys):
        code = main([
            "fleet", *FAST, "--replicas", "4",
            "--router", "round_robin", "least_queue",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "router" in out
        assert "round_robin" in out and "least_queue" in out

    def test_json_and_csv_export(self, tmp_path, capsys):
        json_path = tmp_path / "fleet.json"
        csv_path = tmp_path / "fleet.csv"
        code = main([
            "fleet", *FAST, "--replicas", "2", "--router", "least_queue",
            "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["reports"]) == 1
        assert payload["reports"][0]["unserved"] == 0
        header = csv_path.read_text().splitlines()[0]
        assert "replicas" in header  # swept away from the 1-replica default

    def test_disaggregated_with_failures(self, capsys):
        code = main([
            "fleet", *FAST, "--replicas", "2p+2d",
            "--failures", "1@500:1500",
        ])
        assert code == 0
        assert "goodput" in capsys.readouterr().out

    def test_autoscale_smoke(self, capsys):
        code = main([
            "fleet", *FAST, "--replicas", "3", "--autoscale", "1",
            "--trace", "diurnal",
        ])
        assert code == 0

    def test_report_flag_shows_step_cost_cache(self, capsys):
        code = main(["fleet", *FAST, "--replicas", "2", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "step-cost" in out

    def test_workers_flag(self, capsys):
        code = main([
            "fleet", *FAST, "--replicas", "2",
            "--router", "round_robin", "least_queue", "--workers", "2",
        ])
        assert code == 0


class TestFleetErrors:
    def test_unknown_router_exits_2(self, capsys):
        assert main(["fleet", "--router", "random"]) == 2
        assert "valid router" in capsys.readouterr().err

    def test_unknown_system_exits_2(self, capsys):
        assert main(["fleet", "--systems", "nope"]) == 2
        assert "valid system" in capsys.readouterr().err

    def test_malformed_failure_spec_exits_2(self, capsys):
        assert main(["fleet", "--failures", "bogus"]) == 2
        assert "R@FAIL" in capsys.readouterr().err

    def test_bad_replica_shape_exits_2(self, capsys):
        assert main(["fleet", "--replicas", "2x+3q"]) == 2
