"""Rule-engine coverage: fixtures, suppressions, reporters, CLI.

Each rule must fire on its bad fixture and stay silent on its good one;
suppression comments must divert findings (with mandatory
justifications) without hiding them from the JSON report; and seeding a
deliberate violation into a copy of the real source must light the
linter up — the acceptance drill for the CI gate.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.api.registry import UnknownNameError
from repro.lint import run_lint, to_json_doc
from repro.lint.engine import SUPPRESSION_RULE

FIXTURES = Path(__file__).parent / "lint_fixtures"
PACKAGE_DIR = Path(repro.__file__).parent

RULE_FIXTURES = [
    ("fingerprint-completeness", "fingerprint"),
    ("spec-hygiene", "spec_hygiene"),
    ("determinism", "determinism"),
    ("export-gating", "export_gating"),
    ("registry-consistency", "registry"),
    ("fast-slow-parity", "parity"),
]


@pytest.mark.parametrize("rule,stem", RULE_FIXTURES)
def test_rule_fires_on_bad_fixture(rule, stem):
    report = run_lint([FIXTURES / f"{stem}_bad.py"], rules=[rule])
    assert report.findings, f"{rule} stayed silent on its bad fixture"
    assert all(f.rule == rule for f in report.findings)
    assert all(f.line > 0 for f in report.findings)


@pytest.mark.parametrize("rule,stem", RULE_FIXTURES)
def test_rule_silent_on_good_fixture(rule, stem):
    report = run_lint([FIXTURES / f"{stem}_good.py"], rules=[rule])
    assert report.ok, "\n".join(f.render() for f in report.findings)


def test_fingerprint_rule_names_the_leaked_field_and_stale_exclusion():
    report = run_lint(
        [FIXTURES / "fingerprint_bad.py"], rules=["fingerprint-completeness"]
    )
    messages = [f.message for f in report.findings]
    assert any("'gamma'" in m for m in messages)
    assert any("'ghost'" in m for m in messages)
    assert len(report.findings) == 2


def test_spec_hygiene_flags_each_violation_kind():
    report = run_lint(
        [FIXTURES / "spec_hygiene_bad.py"], rules=["spec-hygiene"]
    )
    text = "\n".join(f.message for f in report.findings)
    assert "ThawedSpec" in text and "frozen=True" in text
    assert "UnfrozenSpec" in text
    assert "mutable default" in text
    assert "lambda default" in text
    assert "lambda default_factory" in text
    assert "InnerSpec" in text and "top level" in text


def test_determinism_covers_every_ban_class():
    report = run_lint(
        [FIXTURES / "determinism_bad.py"], rules=["determinism"]
    )
    text = "\n".join(f.message for f in report.findings)
    assert "time.time()" in text
    assert "os.urandom()" in text
    assert "random.random()" in text
    assert "numpy.random.rand()" in text
    assert text.count("without a seed") == 2
    assert "bare set" in text


def test_export_gating_reports_drift_and_inline_any():
    report = run_lint(
        [FIXTURES / "export_gating_bad.py"], rules=["export-gating"]
    )
    text = "\n".join(f.message for f in report.findings)
    assert "_has_extra" in text
    assert "any(...)" in text


def test_registry_rule_reports_missing_and_phantom_choices():
    report = run_lint(
        [FIXTURES / "registry_bad.py"], rules=["registry-consistency"]
    )
    text = "\n".join(f.message for f in report.findings)
    assert "'replay'" in text
    assert "'wavelet'" in text


def test_parity_reports_unmarked_and_orphaned():
    report = run_lint([FIXTURES / "parity_bad.py"], rules=["fast-slow-parity"])
    text = "\n".join(f.message for f in report.findings)
    assert "fast_unmarked" in text
    assert "ghost_module.missing_reference" in text
    assert len(report.findings) == 2


# -- suppressions -------------------------------------------------------------


def test_suppression_with_justification_diverts_the_finding():
    report = run_lint([FIXTURES / "suppressed_ok.py"], rules=["determinism"])
    assert report.ok
    assert len(report.suppressed) == 2  # trailing and standalone comments
    for finding in report.suppressed:
        assert finding.suppressed
        assert "fixture" in finding.justification


def test_suppression_without_justification_is_a_finding():
    report = run_lint(
        [FIXTURES / "suppressed_nojust.py"], rules=["determinism"]
    )
    assert [f.rule for f in report.findings] == [SUPPRESSION_RULE]
    assert len(report.suppressed) == 1  # the diverted finding is retained


def test_unknown_rule_name_lists_the_valid_rules():
    with pytest.raises(UnknownNameError, match="fingerprint-completeness"):
        run_lint([FIXTURES / "parity_good.py"], rules=["no-such-rule"])


# -- JSON reporter ------------------------------------------------------------


def test_json_reporter_schema():
    report = run_lint(
        [FIXTURES / "determinism_bad.py", FIXTURES / "suppressed_ok.py"],
        rules=["determinism"],
    )
    doc = to_json_doc(report)
    assert doc["version"] == 1
    assert doc["tool"] == "repro-lint"
    assert doc["ok"] is False
    assert doc["files"] == 2
    assert doc["rules"] == ["determinism"]
    assert doc["counts"]["findings"] == len(doc["findings"]) > 0
    assert doc["counts"]["suppressed"] == len(doc["suppressed"]) == 2
    assert doc["counts"]["by_rule"] == {"determinism": len(doc["findings"])}
    for entry in doc["findings"]:
        assert set(entry) == {"rule", "path", "line", "message"}
        assert isinstance(entry["line"], int)
    for entry in doc["suppressed"]:
        assert entry["suppressed"] is True
        assert entry["justification"]
    json.dumps(doc)  # round-trips


# -- seeded violations against real source (the CI-gate drill) ---------------


def test_dropping_the_fingerprint_exclusion_fires(tmp_path):
    source = (PACKAGE_DIR / "graph" / "straggler.py").read_text()
    mutated = source.replace('_fingerprint_exclude = ("name",)',
                             "_fingerprint_exclude = ()")
    assert mutated != source
    target = tmp_path / "straggler_mutated.py"
    target.write_text(mutated)
    report = run_lint([target], rules=["fingerprint-completeness"])
    assert any("'name'" in f.message for f in report.findings)


def test_injecting_wall_clock_into_scheduler_fires(tmp_path):
    source = (PACKAGE_DIR / "graph" / "scheduler.py").read_text()
    mutated = source + (
        "\n\nimport time\n\n\ndef _stamp() -> float:\n"
        "    return time.time()\n"
    )
    target = tmp_path / "scheduler_mutated.py"
    target.write_text(mutated)
    report = run_lint([target], rules=["determinism"])
    assert any("time.time()" in f.message for f in report.findings)


# -- CLI ----------------------------------------------------------------------


def test_cli_lint_fails_on_findings_and_writes_json(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "findings.json"
    code = main([
        "lint", str(FIXTURES / "determinism_bad.py"),
        "--rule", "determinism", "--json", str(out_path),
    ])
    assert code == 1
    doc = json.loads(out_path.read_text())
    assert doc["ok"] is False and doc["findings"]
    capsys.readouterr()


def test_cli_fail_on_none_reports_but_exits_zero(capsys):
    from repro.cli import main

    code = main([
        "lint", str(FIXTURES / "determinism_bad.py"),
        "--rule", "determinism", "--fail-on", "none",
    ])
    assert code == 0
    assert "[determinism]" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule, _ in RULE_FIXTURES:
        assert rule in out
