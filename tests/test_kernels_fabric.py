"""Tests for the cross-rank fetch-fabric contention model."""

import numpy as np
import pytest

from repro.kernels.fabric import FabricTimeline, FetchRun, simulate_fetch_fabric


def caps(world, ingress=100.0, egress=100.0):
    return np.full(world, ingress), np.full(world, egress)


class TestSingleFlow:
    def test_rate_limited_by_ingress(self):
        ingress, egress = caps(2, ingress=10.0, egress=100.0)
        timelines = simulate_fetch_fabric(
            [[FetchRun(src=1, tokens=10)], []],
            token_bytes=100,
            ingress_bytes_per_us=ingress,
            egress_bytes_per_us=egress,
        )
        # 1000 bytes at 10 B/us = 100 us.
        assert timelines[0].finish_time == pytest.approx(100.0)

    def test_rate_limited_by_egress(self):
        ingress, egress = caps(2, ingress=100.0, egress=10.0)
        timelines = simulate_fetch_fabric(
            [[FetchRun(src=1, tokens=10)], []],
            token_bytes=100,
            ingress_bytes_per_us=ingress,
            egress_bytes_per_us=egress,
        )
        assert timelines[0].finish_time == pytest.approx(100.0)

    def test_latency_offsets_start(self):
        ingress, egress = caps(2)
        timelines = simulate_fetch_fabric(
            [[FetchRun(1, 1)], []], 100, ingress, egress, latency_us=5.0
        )
        assert timelines[0].arrival_time(0) >= 5.0


class TestContention:
    def test_shared_source_halves_rates(self):
        """Two ranks pulling from the same source split its egress."""
        ingress, egress = caps(3, ingress=100.0, egress=100.0)
        solo = simulate_fetch_fabric(
            [[FetchRun(2, 100)], [], []], 100, ingress, egress
        )[0].finish_time
        shared = simulate_fetch_fabric(
            [[FetchRun(2, 100)], [FetchRun(2, 100)], []], 100, ingress, egress
        )
        assert shared[0].finish_time == pytest.approx(2 * solo, rel=1e-6)
        assert shared[1].finish_time == pytest.approx(2 * solo, rel=1e-6)

    def test_disjoint_sources_do_not_interact(self):
        ingress, egress = caps(4)
        timelines = simulate_fetch_fabric(
            [[FetchRun(2, 50)], [FetchRun(3, 50)], [], []],
            100,
            ingress,
            egress,
        )
        solo = simulate_fetch_fabric(
            [[FetchRun(2, 50)], [], [], []], 100, ingress, egress
        )[0].finish_time
        assert timelines[0].finish_time == pytest.approx(solo)
        assert timelines[1].finish_time == pytest.approx(solo)

    def test_rank_moves_on_after_run_completes(self):
        """After the contended run drains, the next run runs at full rate."""
        ingress, egress = caps(3, ingress=100.0)
        timelines = simulate_fetch_fabric(
            [
                [FetchRun(2, 100), FetchRun(1, 100)],
                [FetchRun(2, 100)],
                [],
            ],
            100,
            ingress,
            egress,
        )
        # Phase 1: both pull from rank2 (50 B/us each): 200 us.
        # Phase 2: rank0 pulls from rank1 alone at 100 B/us: +100 us.
        assert timelines[0].finish_time == pytest.approx(300.0, rel=1e-6)

    def test_work_conservation(self):
        """Total bytes delivered equals total bytes requested."""
        rng = np.random.default_rng(0)
        world = 4
        runs = [
            [FetchRun(src, int(rng.integers(0, 50))) for src in range(world) if src != dst]
            for dst in range(world)
        ]
        ingress, egress = caps(world, ingress=37.0, egress=53.0)
        timelines = simulate_fetch_fabric(runs, 64, ingress, egress)
        for dst in range(world):
            expected = sum(r.tokens for r in runs[dst])
            assert timelines[dst].counts[-1] == pytest.approx(expected)


class TestTimelineQueries:
    def test_arrival_interpolation(self):
        ingress, egress = caps(2, ingress=10.0)
        timeline = simulate_fetch_fabric(
            [[FetchRun(1, 10)], []], 100, ingress, egress
        )[0]
        # Token i arrives at (i+1)*10 us (100 bytes / 10 B/us each).
        for i in range(10):
            assert timeline.arrival_time(i) == pytest.approx((i + 1) * 10.0)

    def test_negative_index_is_time_zero(self):
        timeline = FabricTimeline(
            times=np.array([0.0, 1.0]), counts=np.array([0.0, 4.0])
        )
        assert timeline.arrival_time(-1) == 0.0

    def test_out_of_range_rejected(self):
        timeline = FabricTimeline(
            times=np.array([0.0, 1.0]), counts=np.array([0.0, 4.0])
        )
        with pytest.raises(ValueError):
            timeline.arrival_time(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            FetchRun(0, -1)
        with pytest.raises(ValueError):
            simulate_fetch_fabric([[]], 0, np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            simulate_fetch_fabric([[]], 8, np.ones(2), np.ones(1))


class TestBalancedMatchesIndependentModel:
    def test_symmetric_pulls_equal_single_rank_rate(self):
        """Under perfectly symmetric traffic the contention model reduces
        to the independent per-rank model (what Comet's default uses)."""
        world = 4
        tokens = 60
        runs = [
            [FetchRun((dst + d) % world, tokens) for d in range(1, world)]
            for dst in range(world)
        ]
        ingress, egress = caps(world, ingress=30.0, egress=30.0)
        timelines = simulate_fetch_fabric(runs, 100, ingress, egress)
        total_bytes = tokens * (world - 1) * 100
        independent = total_bytes / 30.0
        for timeline in timelines:
            assert timeline.finish_time == pytest.approx(independent, rel=0.01)
