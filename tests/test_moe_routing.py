"""Unit tests for routing plans and imbalance generators."""

import numpy as np
import pytest

from repro.moe import (
    RoutingPlan,
    balanced_fractions,
    imbalanced_fractions,
    routing_from_fractions,
    token_owner_ranks,
)


class TestTokenOwnerRanks:
    def test_even_split(self):
        owner = token_owner_ranks(8, 4)
        assert owner.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_remainder_to_leading_ranks(self):
        owner = token_owner_ranks(5, 2)
        assert owner.tolist() == [0, 0, 0, 1, 1]

    def test_empty(self):
        assert token_owner_ranks(0, 4).size == 0

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            token_owner_ranks(4, 0)


class TestFractions:
    def test_balanced(self):
        f = balanced_fractions(8)
        np.testing.assert_allclose(f, 0.125)

    def test_imbalanced_hits_target_std(self):
        for std in (0.01, 0.02, 0.032, 0.05):
            f = imbalanced_fractions(8, std, np.random.default_rng(3))
            assert f.sum() == pytest.approx(1.0)
            assert f.std() == pytest.approx(std, abs=1e-3)
            assert np.all(f >= 0)

    def test_zero_std_is_uniform(self):
        np.testing.assert_allclose(imbalanced_fractions(8, 0.0), 0.125)

    def test_unreachable_std_rejected(self):
        with pytest.raises(ValueError):
            imbalanced_fractions(8, 1.0)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            imbalanced_fractions(8, -0.1)

    def test_large_e(self):
        f = imbalanced_fractions(64, 0.01, np.random.default_rng(0))
        assert f.std() == pytest.approx(0.01, abs=1e-3)


class TestRoutingFromFractions:
    def test_shapes(self):
        plan = routing_from_fractions(100, 2, balanced_fractions(8))
        assert plan.experts.shape == (100, 2)
        assert plan.weights.shape == (100, 2)

    def test_distinct_experts_per_token(self):
        plan = routing_from_fractions(500, 4, balanced_fractions(8))
        for row in plan.experts:
            assert len(set(row.tolist())) == 4

    def test_weights_sum_to_one(self):
        plan = routing_from_fractions(100, 3, balanced_fractions(8))
        np.testing.assert_allclose(plan.weights.sum(axis=1), 1.0, rtol=1e-5)

    def test_loads_follow_fractions(self):
        rng = np.random.default_rng(0)
        fractions = imbalanced_fractions(8, 0.05, rng)
        plan = routing_from_fractions(20000, 2, fractions, rng)
        realised = plan.fractions()
        # Heaviest and lightest experts should match the request's ordering.
        assert realised.argmax() == fractions.argmax()
        assert realised.std() > 0.02

    def test_balanced_has_low_std(self):
        plan = routing_from_fractions(20000, 2, balanced_fractions(8))
        assert plan.load_std() < 0.01

    def test_topk_bounds(self):
        with pytest.raises(ValueError):
            routing_from_fractions(10, 9, balanced_fractions(8))

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            routing_from_fractions(10, 2, np.array([0.5, 0.2]))


class TestRoutingPlan:
    def make_plan(self):
        experts = np.array([[0, 1], [1, 2], [2, 0], [0, 2]])
        weights = np.full((4, 2), 0.5, dtype=np.float32)
        return RoutingPlan(experts=experts, weights=weights, num_experts=3)

    def test_expert_counts(self):
        plan = self.make_plan()
        assert plan.expert_counts.tolist() == [3, 2, 3]

    def test_total_routed(self):
        assert self.make_plan().total_routed == 8

    def test_tokens_for_expert(self):
        plan = self.make_plan()
        tokens, slots = plan.tokens_for_expert(0)
        assert tokens.tolist() == [0, 2, 3]
        assert slots.tolist() == [0, 1, 0]

    def test_tokens_for_expert_out_of_range(self):
        with pytest.raises(ValueError):
            self.make_plan().tokens_for_expert(3)

    def test_counts_by_rank(self):
        plan = self.make_plan()
        owner = np.array([0, 0, 1, 1])
        counts = plan.counts_by_rank(owner)
        assert counts.shape == (2, 3)
        assert counts.sum() == plan.total_routed
        assert counts[0].tolist() == [1, 2, 1]  # tokens 0, 1
        assert counts[1].tolist() == [2, 0, 2]  # tokens 2, 3

    def test_counts_by_rank_shape_validation(self):
        with pytest.raises(ValueError):
            self.make_plan().counts_by_rank(np.zeros(3, dtype=int))

    def test_duplicate_expert_rejected(self):
        with pytest.raises(ValueError):
            RoutingPlan(
                experts=np.array([[1, 1]]),
                weights=np.array([[0.5, 0.5]]),
                num_experts=3,
            )

    def test_expert_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RoutingPlan(
                experts=np.array([[0, 3]]),
                weights=np.array([[0.5, 0.5]]),
                num_experts=3,
            )

    def test_fractions_empty_plan(self):
        plan = RoutingPlan(
            experts=np.zeros((0, 2), dtype=int),
            weights=np.zeros((0, 2)),
            num_experts=4,
        )
        np.testing.assert_array_equal(plan.fractions(), np.zeros(4))
