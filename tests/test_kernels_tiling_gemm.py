"""Unit tests for tiling geometry and the GEMM cost model."""

import numpy as np
import pytest

from repro.hw import H800, L20
from repro.kernels import (
    TileShape,
    activation_time_us,
    gemm_tile_count,
    gemm_time_us,
    group_gemm_time_us,
    num_tiles_1d,
    tile_time_us,
)
from repro.kernels.tiling import row_tiles_per_expert


class TestTiling:
    def test_num_tiles_exact(self):
        assert num_tiles_1d(256, 128) == 2

    def test_num_tiles_ceil(self):
        assert num_tiles_1d(257, 128) == 3

    def test_num_tiles_zero(self):
        assert num_tiles_1d(0, 128) == 0

    def test_gemm_tile_count(self):
        assert gemm_tile_count(256, 384, TileShape(128, 128)) == 2 * 3

    def test_row_tiles_per_expert_padding(self):
        tiles = row_tiles_per_expert(np.array([1, 128, 129, 0]))
        assert tiles.tolist() == [1, 1, 2, 0]

    def test_group_tiles_exceed_merged_tiles(self):
        """Per-expert remainders waste tiles versus one merged GEMM —
        the structural source of chunking loss (Figure 1b)."""
        from repro.kernels import group_gemm_tile_count

        expert_rows = np.array([160, 160, 160, 160])
        grouped = group_gemm_tile_count(expert_rows, 128)
        merged = gemm_tile_count(640, 128)
        assert grouped > merged

    def test_tile_flops(self):
        assert TileShape(128, 128).flops(64) == 2 * 128 * 128 * 64

    def test_tile_invalid(self):
        with pytest.raises(ValueError):
            TileShape(0, 128)
        with pytest.raises(ValueError):
            num_tiles_1d(10, 0)
        with pytest.raises(ValueError):
            TileShape().flops(0)

    def test_io_bytes_panel_reuse(self):
        tile = TileShape(128, 128)
        assert tile.io_bytes(1024, panel_reuse=8.0) < tile.io_bytes(
            1024, panel_reuse=1.0
        )
        with pytest.raises(ValueError):
            tile.io_bytes(1024, panel_reuse=0.5)


class TestTileTime:
    def test_large_k_is_compute_bound(self):
        """With a deep reduction the tile must cost its FLOP time."""
        tile = TileShape(128, 128)
        t = tile_time_us(H800, k=14336, tile=tile)
        assert t == pytest.approx(tile.flops(14336) / H800.flops_per_sm_us)

    def test_time_increases_with_k(self):
        assert tile_time_us(H800, 8192) > tile_time_us(H800, 1024)

    def test_l20_slower_than_h800(self):
        assert tile_time_us(L20, 4096) > tile_time_us(H800, 4096)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            tile_time_us(H800, 0)


class TestGemmTime:
    def test_zero_rows_zero_time(self):
        assert gemm_time_us(H800, 0, 128, 128).time_us == 0.0

    def test_wave_quantisation(self):
        """One tile more than a full wave adds a whole wave."""
        sms = H800.num_sms
        per_tile_rows = 128
        cost_full = gemm_time_us(H800, per_tile_rows * sms, 128, 4096)
        cost_plus = gemm_time_us(H800, per_tile_rows * (sms + 1), 128, 4096)
        assert cost_full.waves == 1
        assert cost_plus.waves == 2
        assert cost_plus.time_us > cost_full.time_us * 1.5

    def test_fewer_sms_slower(self):
        full = gemm_time_us(H800, 4096, 4096, 4096).time_us
        partial = gemm_time_us(H800, 4096, 4096, 4096, num_sms=66).time_us
        assert partial > full

    def test_flops_reported(self):
        cost = gemm_time_us(H800, 256, 512, 1024)
        assert cost.flops == 2 * 256 * 512 * 1024

    def test_chunked_gemm_slower_than_whole(self):
        """t1 + t2 > t: chunking a GroupGEMM along rows loses efficiency."""
        expert_rows = np.array([300, 300, 300, 300])
        whole = group_gemm_time_us(H800, expert_rows, 512, 4096).time_us
        half = group_gemm_time_us(H800, np.ceil(expert_rows / 2), 512, 4096).time_us
        assert 2 * half > whole

    def test_group_gemm_empty_expert_ok(self):
        cost = group_gemm_time_us(H800, np.array([0, 128, 0]), 128, 128)
        assert cost.tiles == 1

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            gemm_time_us(H800, -1, 128, 128)
        with pytest.raises(ValueError):
            group_gemm_time_us(H800, np.array([-1]), 128, 128)

    def test_invalid_sms_rejected(self):
        with pytest.raises(ValueError):
            gemm_time_us(H800, 128, 128, 128, num_sms=0)


class TestActivation:
    def test_scales_with_elements(self):
        t1 = activation_time_us(H800, 1024, 1024)
        t2 = activation_time_us(H800, 2048, 1024)
        assert t2 > t1

    def test_zero_rows_free(self):
        assert activation_time_us(H800, 0, 1024) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            activation_time_us(H800, -1, 4)


class TestGemmEfficiency:
    def test_full_wave_near_one(self):
        """An exact multiple of SM-count tiles wastes only the ramp."""
        cost = gemm_time_us(H800, 128 * H800.num_sms, 128, 4096)
        assert cost.efficiency > 0.95

    def test_partial_wave_lowers_efficiency(self):
        """A single tile occupies one wave: 1/num_sms of the work."""
        single = gemm_time_us(H800, 1, 1, 4096)
        full = gemm_time_us(H800, 128 * H800.num_sms, 128, 4096)
        assert single.efficiency < full.efficiency

    def test_zero_tiles_perfect(self):
        assert gemm_time_us(H800, 0, 128, 128).efficiency == 1.0

    def test_bounded(self):
        for rows in (1, 100, 5000):
            eff = gemm_time_us(H800, rows, 512, 2048).efficiency
            assert 0.0 < eff <= 1.0
