"""Figure 9: end-to-end model latency across models and parallelisms.

Paper claims: Comet reduces end-to-end latency by 34.1% / 42.6% / 44.4% /
31.8% on average versus Megatron-Cutlass / Megatron-TE / FasterMoE /
Tutel, i.e. a 1.71x mean speedup over the baselines, with the attention
part identical across mechanisms.
"""

from repro.bench import fig09_end_to_end


def test_fig09_end_to_end(run_once):
    result = run_once(fig09_end_to_end)
    print("\n" + result.format())

    # Comet is the fastest system in every configuration it shares with a
    # baseline.
    for row in result.rows:
        comet = row.latencies_ms["Comet"]
        for system, latency in row.latencies_ms.items():
            if system != "Comet":
                assert comet < latency, (row.model, row.strategy, system)

    # Mean reductions land in the paper's band (their exact numbers:
    # 34.1 / 42.6 / 44.4 / 31.8%).
    assert 0.15 < result.mean_reduction_vs("Megatron-Cutlass") < 0.55
    assert 0.18 < result.mean_reduction_vs("Megatron-TE") < 0.60
    assert 0.15 < result.mean_reduction_vs("FasterMoE") < 0.60
    assert 0.10 < result.mean_reduction_vs("Tutel") < 0.50
    # TE is never faster than Cutlass (same schedule + API overhead), so
    # the TE reduction is at least the Cutlass reduction.
    assert result.mean_reduction_vs("Megatron-TE") >= result.mean_reduction_vs(
        "Megatron-Cutlass"
    )
