"""Extension bench: full training step (the paper's production context).

COMET is deployed for MoE *training* at ByteDance (the paper reports
millions of GPU hours saved).  This bench times one training step —
forward, backward (same communication, ~2x GEMM), data-parallel gradient
sync, Adam update — under every system and checks that the forward-pass
advantages carry over.
"""

from repro.hw import h800_node
from repro.moe import PAPER_MODELS
from repro.parallel import ParallelStrategy
from repro.runtime.training import run_training_step
from repro.systems import Comet, MegatronCutlass, Tutel


def run_harness(tokens: int = 16384):
    cluster = h800_node()
    results = {}
    for config in PAPER_MODELS:
        strategy = ParallelStrategy(1, 8)
        per_system = {}
        for system in (MegatronCutlass(), Tutel(), Comet()):
            per_system[system.name] = run_training_step(
                system, config, cluster, strategy, total_tokens=tokens
            )
        results[config.name] = per_system
    return results


def test_training_step(run_once):
    results = run_once(run_harness)

    print(f"\n{'model':16s} {'system':18s} {'step ms':>9s} {'MoE %':>7s} "
          f"{'bwd hidden':>10s}")
    for model, per_system in results.items():
        for name, timing in per_system.items():
            print(
                f"{model:16s} {name:18s} {timing.step_ms:9.2f} "
                f"{100 * timing.moe_fraction:6.1f}% "
                f"{100 * timing.moe_bwd.hidden_comm_fraction:9.1f}%"
            )

    for model, per_system in results.items():
        base = per_system["Megatron-Cutlass"].step_us
        tutel = per_system["Tutel"].step_us
        comet = per_system["Comet"].step_us
        # The training-step ladder matches the forward ladder.
        assert comet < tutel < base, model
        # Training speedup in the end-to-end band (paper: 1.71x mean fwd).
        assert 1.2 < base / comet < 2.6, model
        # MoE dominates the step for these models.
        assert per_system["Megatron-Cutlass"].moe_fraction > 0.5, model
