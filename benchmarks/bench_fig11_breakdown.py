"""Figure 11: time breakdown of one MoE layer (EP=8, M=16384).

Paper claims: Megatron variants overlap nothing; FasterMoE hides 29.2% of
communication, Tutel 68.6%, and Comet 86.5%, with Comet's expert compute
efficiency unimpaired.
"""

from repro.bench import fig11_breakdown


def test_fig11_breakdown(run_once):
    result = run_once(fig11_breakdown)
    print("\n" + result.format())

    # No overlap in either Megatron variant.
    assert result.hidden_fraction("Megatron-Cutlass") == 0.0
    assert result.hidden_fraction("Megatron-TE") == 0.0

    # The paper's hiding ladder, as bands around its numbers.
    faster = result.hidden_fraction("FasterMoE")
    tutel = result.hidden_fraction("Tutel")
    comet = result.hidden_fraction("Comet")
    assert 0.15 < faster < 0.45  # paper: 0.292
    assert 0.50 < tutel < 0.85  # paper: 0.686
    assert comet > 0.80  # paper: 0.865
    assert faster < tutel < comet

    # Comet's compute segments stay in the same ballpark as Megatron's
    # (thread-block isolation preserves GEMM efficiency).
    comet_comp = result.timings["Comet"].comp_us
    megatron_comp = result.timings["Megatron-Cutlass"].comp_us
    assert comet_comp < 1.35 * megatron_comp

    # Total ordering matches the paper's bars.
    totals = {name: t.total_us for name, t in result.timings.items()}
    assert totals["Comet"] < totals["Tutel"] < totals["FasterMoE"]
    assert totals["FasterMoE"] < totals["Megatron-Cutlass"] <= totals["Megatron-TE"]
