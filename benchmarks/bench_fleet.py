"""Fleet-layer benchmark: routing on heterogeneous fleets, diurnal
autoscaling, and the single-replica fast-path guarantee.

Three scenarios, each doubling as an acceptance check:

* **routing** — a bursty trace against a 4-replica fleet with one
  replica degraded by a 2.5x compute straggler.  Power-of-two-choices
  must strictly beat round-robin on p99 TTFT (on a homogeneous fleet
  round-robin's count-balance is near-optimal; heterogeneity is what
  state-aware routing is for).
* **autoscale** — a diurnal arrival cycle on a 4-replica ceiling with a
  1-replica floor.  The autoscaler must demonstrably track the cycle:
  every scale-up in the peak half of the trace, at least one
  scale-down after the peak, and a mean active-GPU count well under
  static provisioning at equal served load.
* **identity** — a 1-replica round-robin fleet must produce
  byte-identical exports to the bare serving engine (the fleet layer's
  zero-overhead contract), and it must reuse the shared step-cost cache.

Run directly (CI smoke step) to emit ``BENCH_fleet.json``::

    python benchmarks/bench_fleet.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import FleetSpec, ServeSpec, StragglerSpec, TraceSpec, perf
from repro.fleet import AutoscalerSpec, ReplicaSpec
from repro.hw.presets import h800_node
from repro.parallel import ParallelStrategy

STRATEGY = ParallelStrategy(tp_size=1, ep_size=8)


def _pool(straggler_mult: float = 2.5):
    cluster = h800_node()
    return (
        ReplicaSpec(cluster=cluster, strategy=STRATEGY, count=3),
        ReplicaSpec(
            cluster=cluster,
            strategy=STRATEGY,
            count=1,
            stragglers=StragglerSpec.slow_rank(8, rank=0, compute_mult=straggler_mult),
        ),
    )


def bench_routing(quick: bool = False) -> dict:
    """p2c vs round-robin on the heterogeneous fleet."""
    trace = TraceSpec(
        kind="bursty",
        rps=150.0 if quick else 300.0,
        duration_s=4.0 if quick else 8.0,
        seed=3,
    )
    start = time.perf_counter()
    results = FleetSpec.grid(
        replicas=_pool(),
        routers=("round_robin", "least_queue", "power_of_two"),
        traces=trace,
        systems="comet",
    ).run(workers=3)
    wall_s = time.perf_counter() - start

    def doc(router: str) -> dict:
        report = results.get("comet", router=router)
        return {
            "ttft_p99_ms": report.ttft_percentiles()["p99"],
            "ttft_p50_ms": report.ttft_percentiles()["p50"],
            "goodput_rps": report.goodput_rps,
            "slo_attainment": report.slo_attainment,
            "unserved": report.unserved,
        }

    routers = {name: doc(name) for name in
               ("round_robin", "least_queue", "power_of_two")}
    return {
        "trace": trace.label,
        "fleet": "3 healthy + 1 straggler (compute_mult=2.5, rank 0)",
        "wall_s": wall_s,
        "routers": routers,
        "p2c_beats_rr": (
            routers["power_of_two"]["ttft_p99_ms"]
            < routers["round_robin"]["ttft_p99_ms"]
        ),
    }


def bench_autoscale(quick: bool = False) -> dict:
    """Queue-driven autoscaling against a diurnal cycle."""
    trace = TraceSpec(
        kind="diurnal",
        rps=150.0,
        duration_s=10.0 if quick else 20.0,
        seed=1,
        amplitude=0.9,
    )
    scaler = AutoscalerSpec(
        min_replicas=1,
        scale_up_queue=4.0,
        scale_down_queue=0.5,
        interval_ms=500.0,
        warmup_ms=1000.0,
    )
    start = time.perf_counter()
    results = FleetSpec.grid(
        replicas=4,
        autoscalers=(None, scaler),
        traces=trace,
        systems="comet",
    ).run(workers=2)
    wall_s = time.perf_counter() - start
    static, scaled = results.reports
    if static.autoscaler_churn:
        static, scaled = scaled, static
    ups = sorted(e.t_ms for e in scaled.events if e.kind == "up")
    downs = sorted(e.t_ms for e in scaled.events if e.kind == "down")
    horizon = trace.horizon_ms
    return {
        "trace": trace.label,
        "wall_s": wall_s,
        "scale_ups": len(ups),
        "scale_downs": len(downs),
        "scale_up_times_ms": ups,
        "scale_down_times_ms": downs,
        "horizon_ms": horizon,
        # Diurnal peak sits at horizon/4; demand (and therefore queue
        # pressure) lives in the first half of the trace.
        "ups_in_peak_half": sum(1 for t in ups if t <= horizon / 2),
        "downs_after_peak": sum(1 for t in downs if t > horizon / 4),
        "mean_active_gpus_scaled": scaled.mean_active_gpus,
        "mean_active_gpus_static": static.mean_active_gpus,
        "unserved_scaled": scaled.unserved,
        "goodput_scaled_rps": scaled.goodput_rps,
        "goodput_static_rps": static.goodput_rps,
        "goodput_per_gpu_scaled": scaled.goodput_per_gpu,
        "goodput_per_gpu_static": static.goodput_per_gpu,
    }


def bench_identity(quick: bool = False) -> dict:
    """1-replica fleet == bare serving engine, with cache reuse."""
    trace = TraceSpec(
        kind="poisson",
        rps=40.0 if quick else 80.0,
        duration_s=3.0 if quick else 6.0,
        seed=0,
    )
    perf.clear_caches()
    start = time.perf_counter()
    serve = ServeSpec.grid(traces=trace, systems="comet").run()
    serve_s = time.perf_counter() - start
    start = time.perf_counter()
    fleet = FleetSpec.grid(traces=trace, systems="comet").run()
    fleet_s = time.perf_counter() - start
    identical = fleet.reports[0].records == serve.reports[0].records
    step_cost = perf.cache_stats()["step-cost"]
    return {
        "trace": trace.label,
        "wall_s_serve": serve_s,
        "wall_s_fleet": fleet_s,
        "identical_records": identical,
        "step_cost_cache": step_cost,
    }


def run_benchmark(quick: bool = False) -> dict:
    return {
        "benchmark": "fleet",
        "mode": "quick" if quick else "full",
        "routing": bench_routing(quick),
        "autoscale": bench_autoscale(quick),
        "identity": bench_identity(quick),
    }


def _check(payload: dict) -> list[str]:
    """The acceptance conditions; returns human-readable failures."""
    failures = []
    routing, autoscale, identity = (
        payload["routing"], payload["autoscale"], payload["identity"],
    )
    if not routing["p2c_beats_rr"]:
        failures.append(
            "power_of_two p99 TTFT "
            f"{routing['routers']['power_of_two']['ttft_p99_ms']:.1f}ms is not "
            "strictly below round_robin "
            f"{routing['routers']['round_robin']['ttft_p99_ms']:.1f}ms"
        )
    if any(doc["unserved"] for doc in routing["routers"].values()):
        failures.append("a routed fleet dropped requests")
    if not identity["identical_records"]:
        failures.append("1-replica fleet records differ from the bare engine")
    if autoscale["scale_ups"] < 1:
        failures.append("autoscaler never scaled up on the diurnal peak")
    if autoscale["ups_in_peak_half"] != autoscale["scale_ups"]:
        failures.append("a scale-up fired outside the diurnal peak half")
    if autoscale["scale_downs"] < 1:
        failures.append("autoscaler never drained after the peak")
    if autoscale["unserved_scaled"]:
        failures.append("autoscaled fleet dropped requests")
    if not (
        autoscale["mean_active_gpus_scaled"]
        < autoscale["mean_active_gpus_static"]
    ):
        failures.append("autoscaling saved no GPU-hours vs static provisioning")
    return failures


def test_fleet(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    assert not _check(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller traces for CI smoke runs (acceptance still enforced)",
    )
    parser.add_argument("--out", default="BENCH_fleet.json", metavar="PATH")
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    routing = payload["routing"]["routers"]
    print(
        f"routing: rr p99 {routing['round_robin']['ttft_p99_ms']:.1f}ms vs "
        f"p2c {routing['power_of_two']['ttft_p99_ms']:.1f}ms "
        f"(beats_rr={payload['routing']['p2c_beats_rr']})"
    )
    autoscale = payload["autoscale"]
    print(
        f"autoscale: {autoscale['scale_ups']} ups "
        f"({autoscale['ups_in_peak_half']} in peak half), "
        f"{autoscale['scale_downs']} downs, active GPUs "
        f"{autoscale['mean_active_gpus_scaled']:.1f} vs "
        f"{autoscale['mean_active_gpus_static']:.0f} static"
    )
    identity = payload["identity"]
    print(
        f"identity: records identical={identity['identical_records']}, "
        f"step-cost cache hit rate "
        f"{identity['step_cost_cache']['hit_rate']:.2f}"
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
