"""Ablation: thread-block specialisation vs vertical fusion (paper §3.2.1).

Vertical fusion folds communication into the GEMM prologue/epilogue:
remote I/O serialises with (and stalls) the tensor-core pipeline.  The
paper rejects that design in favour of dedicated communication blocks;
this bench quantifies the gap.
"""

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet


def run_ablation(tokens: int = 16384):
    workload = make_workload(
        MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), tokens
    )
    specialized = Comet(specialized=True).time_layer(workload)
    vertical = Comet(specialized=False).time_layer(workload)
    return specialized, vertical


def test_ablation_specialization(run_once):
    specialized, vertical = run_once(run_ablation)
    print(
        f"\nspecialized    : {specialized.total_us / 1000:.3f} ms"
        f"\nvertical fusion: {vertical.total_us / 1000:.3f} ms"
        f"  (gap {vertical.total_us / specialized.total_us:.2f}x)"
    )
    assert specialized.total_us < vertical.total_us
    # Vertical fusion hides nothing: its communication is inline.
    assert vertical.hidden_comm_fraction == 0.0
