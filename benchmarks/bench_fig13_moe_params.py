"""Figure 13: single MoE layer across expert counts and topk values.

Paper claims: layer duration grows with topk (more routed computation);
Comet delivers 1.16x-1.83x speedup across E in {8, 16} and topk in
{1, 2, 4, 8} at M=16384, EP=8.
"""

from repro.bench import fig13_moe_params


def test_fig13_moe_params(run_once):
    result = run_once(fig13_moe_params)
    print("\n" + result.format())

    # Duration increases with topk for every system and expert count.
    by_e: dict = {}
    for row in result.rows:
        by_e.setdefault(row.experts, []).append(row)
    for rows in by_e.values():
        rows.sort(key=lambda r: r.topk)
        for system in rows[0].durations_ms:
            series = [r.durations_ms[system] for r in rows if system in r.durations_ms]
            assert series == sorted(series), system

    # Comet wins everywhere, inside a band around the paper's 1.16-1.83x.
    speedups = result.speedups
    assert min(speedups) > 1.05
    assert max(speedups) < 2.6
