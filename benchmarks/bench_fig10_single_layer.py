"""Figure 10: single MoE layer duration across input token lengths.

Paper claims: with expert parallelism (EP=8) and Mixtral-shaped experts,
Comet achieves a 1.28x-2.37x speedup over the baselines (mean ~1.96x)
across M in [2048, 32768], for both (E=8, topk=2) and (E=32, topk=4).
"""

from repro.bench import fig10_single_layer


def test_fig10_single_layer(run_once):
    result = run_once(fig10_single_layer)
    print("\n" + result.format())

    # Comet wins every cell.
    for row in result.rows:
        for system in row.durations_ms:
            if system != "Comet":
                assert row.speedup(system) > 1.0, (row.tokens, system)

    # Speedups in the paper's band.
    low, high = result.speedup_range
    assert low > 1.1
    assert high < 3.0
    assert 1.4 < result.mean_speedup < 2.4  # paper: 1.96x

    # Durations grow with the token count for every system.
    by_config: dict = {}
    for row in result.rows:
        by_config.setdefault((row.experts, row.topk), []).append(row)
    for rows in by_config.values():
        rows.sort(key=lambda r: r.tokens)
        for system in rows[0].durations_ms:
            series = [r.durations_ms[system] for r in rows if system in r.durations_ms]
            assert series == sorted(series), system
