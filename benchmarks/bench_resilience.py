"""Resilience benchmark: does the detect→drain→recover loop pay for
itself, and does front-door policy protect SLO goodput under crashes?

Two scenarios, each doubling as an acceptance check:

* **detect** — a round-robin fleet where one replica silently slows 4x
  mid-run.  The static router keeps feeding the straggler, so the
  health detector's probation/eviction is the only remediation; it must
  strictly improve p99 TTFT over the no-detector twin and must fire at
  least one probation.
* **survive** — a staggered two-crash schedule under bursty load, no
  policy vs front-door deadlines + seeded retries + SLO-aware shedding.
  Shedding rejects work the fleet cannot serve within SLO, so the
  policy run must hold strictly higher SLO goodput and attainment than
  letting every request queue through the outage, while conserving
  every offered request (completed + timed-out + shed).

Run directly (CI smoke step) to emit ``BENCH_resilience.json``::

    python benchmarks/bench_resilience.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import (
    DegradeEvent,
    FailureEvent,
    FaultPlan,
    FleetSpec,
    ResilienceSpec,
    TraceSpec,
)


def bench_detect(quick: bool = False) -> dict:
    """Mid-run 4x degradation: detector off vs on, round-robin."""
    duration_s = 4.0 if quick else 8.0
    trace = TraceSpec(kind="poisson", rps=70.0, duration_s=duration_s, seed=11)
    plan = FaultPlan(degrades=(
        DegradeEvent(
            replica=0,
            t0_ms=500.0,
            t1_ms=trace.horizon_ms,  # slow until the end: no self-healing
            compute_mult=4.0,
            comm_mult=4.0,
        ),
    ))
    detector = ResilienceSpec(
        slow_factor=1.5,
        check_interval_ms=250.0,
        health_window_ms=750.0,
        probation_ms=1500.0,
        max_probations=1,
    )
    start = time.perf_counter()
    blind, watched = (
        FleetSpec.grid(
            replicas=3,
            routers="round_robin",
            traces=trace,
            systems="comet",
            faults=plan,
            resilience=(None, detector),
        )
        .run(workers=2)
        .reports
    )
    wall_s = time.perf_counter() - start

    def doc(report) -> dict:
        return {
            "ttft_p99_ms": report.ttft_percentiles()["p99"],
            "ttft_p50_ms": report.ttft_percentiles()["p50"],
            "goodput_rps": report.goodput_rps,
            "probations": report.probations,
            "evictions": report.evictions,
            "unserved": report.unserved,
        }

    blind_doc, watched_doc = doc(blind), doc(watched)
    return {
        "trace": trace.label,
        "fault": "replica 0 slows 4x from 500ms to end of trace",
        "wall_s": wall_s,
        "no_detector": blind_doc,
        "detector": watched_doc,
        "detector_improves_p99": (
            watched_doc["ttft_p99_ms"] < blind_doc["ttft_p99_ms"]
        ),
    }


def bench_survive(quick: bool = False) -> dict:
    """Two staggered crashes: no policy vs deadlines+retry+shed."""
    duration_s = 3.0 if quick else 6.0
    trace = TraceSpec(kind="bursty", rps=120.0, duration_s=duration_s, seed=3)
    plan = FaultPlan(crashes=(
        FailureEvent(replica=0, fail_ms=500.0, recover_ms=2500.0),
        FailureEvent(replica=1, fail_ms=1000.0, recover_ms=2000.0),
    ))
    policy = ResilienceSpec(timeout_ms=8000.0, max_retries=2, shed_factor=0.75)
    start = time.perf_counter()
    bare, defended = (
        FleetSpec.grid(
            replicas=3,
            routers="least_queue",
            traces=trace,
            systems="comet",
            faults=plan,
            resilience=(None, policy),
            slo_ttft_ms=300.0,
        )
        .run(workers=2)
        .reports
    )
    wall_s = time.perf_counter() - start

    def doc(report) -> dict:
        return {
            "ttft_p99_ms": report.ttft_percentiles()["p99"],
            "goodput_rps": report.goodput_rps,
            "slo_attainment": report.slo_attainment,
            "completed": report.num_requests,
            "timed_out": report.timed_out,
            "shed": report.shed,
            "retries": report.retries,
            "offered": report.offered,
            "unserved": report.unserved,
        }

    bare_doc, defended_doc = doc(bare), doc(defended)
    return {
        "trace": trace.label,
        "fault": "replica 0 down 500-2500ms, replica 1 down 1000-2000ms",
        "slo_ttft_ms": 300.0,
        "wall_s": wall_s,
        "no_policy": bare_doc,
        "policy": defended_doc,
        "policy_raises_goodput": (
            defended_doc["goodput_rps"] > bare_doc["goodput_rps"]
        ),
        "policy_conserves_requests": (
            defended_doc["offered"]
            == defended_doc["completed"]
            + defended_doc["timed_out"]
            + defended_doc["shed"]
        ),
    }


def run_benchmark(quick: bool = False) -> dict:
    return {
        "benchmark": "resilience",
        "mode": "quick" if quick else "full",
        "detect": bench_detect(quick),
        "survive": bench_survive(quick),
    }


def _check(payload: dict) -> list[str]:
    """The acceptance conditions; returns human-readable failures."""
    failures = []
    detect, survive = payload["detect"], payload["survive"]
    if not detect["detector_improves_p99"]:
        failures.append(
            "detector p99 TTFT "
            f"{detect['detector']['ttft_p99_ms']:.1f}ms is not strictly below "
            f"no-detector {detect['no_detector']['ttft_p99_ms']:.1f}ms"
        )
    if detect["detector"]["probations"] < 1:
        failures.append("detector never put the straggler on probation")
    if detect["no_detector"]["unserved"] or detect["detector"]["unserved"]:
        failures.append("a degraded fleet dropped requests")
    if not survive["policy_raises_goodput"]:
        failures.append(
            "retry+shed goodput "
            f"{survive['policy']['goodput_rps']:.1f}/s is not strictly above "
            f"no-policy {survive['no_policy']['goodput_rps']:.1f}/s"
        )
    if not (
        survive["policy"]["slo_attainment"]
        > survive["no_policy"]["slo_attainment"]
    ):
        failures.append("policy did not raise SLO attainment under crashes")
    if not survive["policy_conserves_requests"]:
        failures.append("policy run lost requests (offered != resolved)")
    if survive["policy"]["unserved"] or survive["no_policy"]["unserved"]:
        failures.append("a crash-schedule run left requests unresolved")
    return failures


def test_resilience(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    assert not _check(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller traces for CI smoke runs (acceptance still enforced)",
    )
    parser.add_argument("--out", default="BENCH_resilience.json", metavar="PATH")
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    detect = payload["detect"]
    print(
        f"detect: p99 TTFT {detect['no_detector']['ttft_p99_ms']:.1f}ms -> "
        f"{detect['detector']['ttft_p99_ms']:.1f}ms with "
        f"{detect['detector']['probations']} probation(s), "
        f"{detect['detector']['evictions']} eviction(s)"
    )
    survive = payload["survive"]
    print(
        f"survive: goodput {survive['no_policy']['goodput_rps']:.1f}/s -> "
        f"{survive['policy']['goodput_rps']:.1f}/s, SLO attainment "
        f"{survive['no_policy']['slo_attainment']:.3f} -> "
        f"{survive['policy']['slo_attainment']:.3f} "
        f"({survive['policy']['shed']} shed, "
        f"{survive['policy']['timed_out']} timed out)"
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
