"""Table 3: NVSHMEM communication-buffer footprint per device.

Paper claims (exact): the symmetric buffer is dtype * M * N bytes per
device, shared across layers and experts — 32/64 MB for Mixtral,
16/32 MB for Qwen2-MoE, 32/64 MB for Phi-3.5-MoE at M = 4096/8192.
"""

import pytest

from repro.bench import table3_memory

PAPER_TABLE3_MB = {
    ("Mixtral-8x7B", 4096): 32,
    ("Mixtral-8x7B", 8192): 64,
    ("Qwen2-MoE-2.7B", 4096): 16,
    ("Qwen2-MoE-2.7B", 8192): 32,
    ("Phi-3.5-MoE", 4096): 32,
    ("Phi-3.5-MoE", 8192): 64,
}


def test_table3_memory(run_once):
    result = run_once(table3_memory)
    print("\n" + result.format())

    # This table reproduces *exactly*: it is pure accounting.
    for key, expected_mb in PAPER_TABLE3_MB.items():
        assert result.buffers_mb[key] == pytest.approx(expected_mb), key
