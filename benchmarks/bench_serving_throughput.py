"""Serving throughput sweep: goodput vs offered load per system.

The serving analogue of the paper's end-to-end claim: COMET's per-layer
latency reduction compounds into a higher sustainable request rate under
an SLO.  The sweep offers increasing Poisson load to each system and
records SLO goodput; COMET must dominate every baseline at and beyond
the baselines' saturation point, and every system must track the offered
load while unsaturated.
"""

from repro.serve import ServeSpec, TraceSpec

RPS_GRID = (60, 150, 220)
SYSTEMS = ("megatron-cutlass", "megatron-te", "fastermoe", "tutel", "comet")


def serving_sweep() -> dict[float, dict[str, float]]:
    goodput: dict[float, dict[str, float]] = {}
    for rps in RPS_GRID:
        spec = ServeSpec.grid(
            models="mixtral",
            clusters="h800",
            traces=TraceSpec(kind="poisson", rps=rps, duration_s=10, seed=0),
            slo_ttft_ms=500.0,
            systems=SYSTEMS,
        )
        goodput[rps] = spec.run().goodput_by_system()
    return goodput


def test_serving_throughput(run_once):
    goodput = run_once(serving_sweep)

    print()
    systems = list(goodput[RPS_GRID[0]])
    print(f"{'offered rps':>11s}  " + "  ".join(f"{s:>16s}" for s in systems))
    for rps, by_system in goodput.items():
        print(
            f"{rps:11.0f}  "
            + "  ".join(f"{by_system[s]:14.1f}/s" for s in systems)
        )

    for rps, by_system in goodput.items():
        comet = by_system["Comet"]
        # Unsaturated systems serve (almost) everything they are offered.
        assert comet > 0.85 * rps or rps == max(RPS_GRID)
        # COMET is never worse than any baseline at any load.
        for system, value in by_system.items():
            if system != "Comet":
                assert comet >= value, (rps, system)

    # Beyond the baselines' saturation point the ordering is strict.
    saturated = goodput[max(RPS_GRID)]
    comet = saturated["Comet"]
    for system, value in saturated.items():
        if system != "Comet":
            assert comet > value, (system, value)
