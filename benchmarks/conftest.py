"""Shared pytest-benchmark configuration.

Every benchmark regenerates a full paper figure/table, so a single round
is the meaningful unit; pytest-benchmark's default calibration would
re-run multi-second harnesses dozens of times for no statistical gain.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run the harness exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
