"""Graph-scheduler speed benchmark: symmetry + batch vs the list scheduler.

Measures the two graph-level fast paths of the raw-speed round-2 work
and enforces the bit-identity contract while doing so:

* **grid** — a world-64 straggler grid (slow-rank compute multipliers x
  slow-rank positions, the Figure 14-style skew axis at pod scale), each
  point lowered to a per-rank forward graph and scheduled.  Slow = the
  original heapq list scheduler per graph (:func:`repro.perf.disabled`);
  fast = :func:`repro.perf.cached_graph_schedule`, which folds the 64
  ranks down to their straggler equivalence classes
  (:func:`repro.graph.scheduler.reduce_symmetry`) and replays the
  compiled chain recurrence (:mod:`repro.graph.batch`).  Every start,
  finish, and per-rank makespan must match ``==`` — never approximately.
* **batch** — the same duration-grid expressed as one
  :func:`repro.graph.batch.schedule_batch` call: all graphs share one
  topology fingerprint, so the wave recurrence runs once over a
  ``(batch, nodes)`` duration matrix instead of per graph.

Run directly (CI smoke step) to emit ``BENCH_graph_speed.json``::

    python benchmarks/bench_graph_speed.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import perf
from repro.graph import (
    LayerPhase,
    NodeKind,
    StragglerSpec,
    build_forward_graph,
    list_schedule,
    reduce_symmetry,
    schedule_batch,
)

WORLD_SIZE = 64

# Wall-clock floors the fast paths must clear (the PR's acceptance bar).
GRID_TARGET = 10.0
QUICK_TARGET = 2.0

PHASES = (
    LayerPhase(NodeKind.GATE, 12.0),
    LayerPhase(NodeKind.DISPATCH, 40.0, comm=True),
    LayerPhase(NodeKind.EXPERT, 55.0),
    LayerPhase(NodeKind.ACTIVATION, 6.0),
    LayerPhase(NodeKind.EXPERT, 48.0),
    LayerPhase(NodeKind.COMBINE, 33.0, comm=True),
    LayerPhase(NodeKind.HOST, 3.0),
)


def _straggler_grid(quick: bool) -> list[StragglerSpec]:
    """Slow-rank multiplier x position sweep at world 64."""
    mults = (1.3, 1.9) if quick else (1.1, 1.3, 1.5, 1.7, 1.9, 2.2, 2.6, 3.1)
    ranks = (0, 21) if quick else (0, 9, 21, 40, 63)
    return [
        StragglerSpec.slow_rank(
            WORLD_SIZE, rank=rank, compute_mult=mult, comm_mult=1.1
        )
        for mult in mults
        for rank in ranks
    ]


def _graphs(quick: bool):
    num_layers = 4 if quick else 8
    return [
        build_forward_graph(PHASES, 25.0, num_layers, "per_layer", spec)
        for spec in _straggler_grid(quick)
    ]


def _identical(fast, slow) -> bool:
    return (
        fast.start_us == slow.start_us
        and fast.finish_us == slow.finish_us
        and fast.rank_makespans() == slow.rank_makespans()
    )


def bench_grid(quick: bool = False) -> dict:
    """Schedule the straggler grid, heapq list scheduler vs fast paths."""
    graphs = _graphs(quick)

    t0 = time.perf_counter()
    with perf.disabled():
        slow = [list_schedule(graph) for graph in graphs]
    slow_s = time.perf_counter() - t0

    perf.clear_caches()
    t0 = time.perf_counter()
    fast = [perf.cached_graph_schedule(graph) for graph in graphs]
    fast_s = time.perf_counter() - t0

    symmetry = reduce_symmetry(graphs[0])
    return {
        "world_size": WORLD_SIZE,
        "graphs": len(graphs),
        "nodes_per_graph": len(graphs[0]),
        "scheduled_ranks": len(symmetry.reps) if symmetry else WORLD_SIZE,
        "wall_s_slow": slow_s,
        "wall_s_fast": fast_s,
        "speedup": slow_s / fast_s,
        "target_speedup": QUICK_TARGET if quick else GRID_TARGET,
        "identical_output": all(
            _identical(f, s) for f, s in zip(fast, slow)
        ),
        "caches": {
            name: stats
            for name, stats in perf.cache_stats().items()
            if name in ("graph", "graph_batch")
        },
    }


def bench_batch(quick: bool = False) -> dict:
    """One schedule_batch call over the grid vs per-graph list scheduling."""
    graphs = _graphs(quick)

    t0 = time.perf_counter()
    with perf.disabled():
        slow = [list_schedule(graph) for graph in graphs]
    slow_s = time.perf_counter() - t0

    perf.clear_caches()
    t0 = time.perf_counter()
    batched = schedule_batch(graphs)
    batch_s = time.perf_counter() - t0

    return {
        "graphs": len(graphs),
        "wall_s_slow": slow_s,
        "wall_s_batched": batch_s,
        "speedup": slow_s / batch_s,
        "identical_output": all(
            _identical(b, s) for b, s in zip(batched, slow)
        ),
    }


def run_benchmark(quick: bool = False) -> dict:
    return {
        "benchmark": "graph_speed",
        "mode": "quick" if quick else "full",
        "grid": bench_grid(quick),
        "batch": bench_batch(quick),
    }


def _check(payload: dict) -> list[str]:
    """The acceptance conditions; returns human-readable failures."""
    failures = []
    grid, batch = payload["grid"], payload["batch"]
    if not grid["identical_output"]:
        failures.append("grid fast path is not bit-identical to list_schedule")
    if not batch["identical_output"]:
        failures.append("batched schedules are not bit-identical to list_schedule")
    target = grid["target_speedup"]
    if grid["speedup"] < target:
        failures.append(f"grid speedup {grid['speedup']:.2f}x < {target}x")
    return failures


def test_graph_speed(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    assert not _check(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid and a lower floor for CI smoke runs "
        "(bit-identity still enforced)",
    )
    parser.add_argument("--out", default="BENCH_graph_speed.json", metavar="PATH")
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    grid, batch = payload["grid"], payload["batch"]
    print(
        f"grid:  {grid['wall_s_slow']:.3f}s -> {grid['wall_s_fast']:.3f}s "
        f"({grid['speedup']:.2f}x over {grid['graphs']} world-{WORLD_SIZE} "
        f"graphs, {grid['scheduled_ranks']} scheduled ranks, "
        f"identical={grid['identical_output']})"
    )
    print(
        f"batch: {batch['wall_s_slow']:.3f}s -> {batch['wall_s_batched']:.3f}s "
        f"({batch['speedup']:.2f}x, identical={batch['identical_output']})"
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
