"""Extension bench: scaling expert parallelism across nodes.

The paper deploys COMET on production clusters beyond a single node,
where the EP all-to-all crosses the (much slower) scale-out fabric. This
bench grows the pod from 1 to 4 H800 nodes (EP = 8 -> 32, experts scale
with the world so per-GPU work is constant) and checks that:

* every system slows down as more traffic leaves NVLink;
* COMET's advantage persists — and widens — because a slower fabric
  means *more* communication latency to hide under the same compute.
"""

from repro.hw.multinode import h800_pod
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet, MegatronCutlass, Tutel


def run_harness(tokens_per_gpu: int = 2048):
    results = {}
    for nodes in (1, 2, 4):
        pod = h800_pod(nodes)
        world = pod.world_size
        cluster = pod.effective_cluster()
        config = MIXTRAL_8X7B.with_experts(world, 2)  # one expert per GPU
        workload = make_workload(
            config, cluster, ParallelStrategy(1, world),
            total_tokens=tokens_per_gpu * world,
        )
        per_system = {}
        for system in (MegatronCutlass(), Tutel(), Comet()):
            per_system[system.name] = system.time_layer(workload)
        results[nodes] = per_system
    return results


def test_scaling_multinode(run_once):
    results = run_once(run_harness)

    print(f"\n{'nodes':>5s} {'GPUs':>5s} " + "".join(
        f"{name:>18s}" for name in ("Megatron-Cutlass", "Tutel", "Comet")
    ) + f" {'speedup':>8s}")
    for nodes, per_system in results.items():
        base = per_system["Megatron-Cutlass"].total_us
        comet = per_system["Comet"].total_us
        cells = "".join(
            f" {per_system[n].total_us / 1000:17.3f}"
            for n in ("Megatron-Cutlass", "Tutel", "Comet")
        )
        print(f"{nodes:5d} {nodes * 8:5d}{cells} {base / comet:7.2f}x")

    # Per-GPU work is constant, so growth in layer time is fabric-driven:
    # crossing nodes must slow every system down.
    for name in ("Megatron-Cutlass", "Tutel", "Comet"):
        series = [results[n][name].total_us for n in (1, 2, 4)]
        assert series[1] > series[0], name
        assert series[2] > series[1], name

    # COMET stays fastest at every scale.
    for nodes, per_system in results.items():
        comet = per_system["Comet"].total_us
        for name, timing in per_system.items():
            if name != "Comet":
                assert comet < timing.total_us, (nodes, name)

    # The slower fabric leaves more latency to hide: COMET's speedup over
    # Megatron does not shrink when leaving the node.
    speedups = {
        n: results[n]["Megatron-Cutlass"].total_us / results[n]["Comet"].total_us
        for n in (1, 2, 4)
    }
    assert speedups[4] > speedups[1] * 0.9
