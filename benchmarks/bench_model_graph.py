"""Whole-model schedule-graph benchmark: per-layer vs cross-layer makespans.

Times a figure-sized model (Mixtral-8x7B, 32 layers) on a comm-bound
2-node H800 pod under every overlap policy and system, enforcing the
graph IR's contracts while measuring:

* ``per_layer`` graph composition must equal the legacy additive
  ``run_model`` total bit for bit;
* ``cross_layer`` / ``shortcut`` must be strictly faster end to end;
* the analytic list scheduler must agree exactly with the DES reference
  executor on the unrolled graphs it prices.

Run directly (CI smoke step) to emit ``BENCH_model_graph.json``::

    python benchmarks/bench_model_graph.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import MIXTRAL_8X7B, ParallelStrategy, SYSTEM_REGISTRY, run_model
from repro.graph import (
    OVERLAP_POLICIES,
    build_forward_graph,
    des_schedule,
    forward_makespan,
    list_schedule,
)
from repro.hw.multinode import h800_pod

STRATEGY = ParallelStrategy(tp_size=2, ep_size=8)
SYSTEMS = ("megatron-cutlass", "tutel", "comet")


def run_benchmark(quick: bool = False) -> dict:
    cluster = h800_pod(2).effective_cluster()
    tokens = 4096 if quick else 16384
    payload: dict = {
        "model": MIXTRAL_8X7B.name,
        "cluster": cluster.name,
        "strategy": str(STRATEGY),
        "tokens": tokens,
        "num_layers": MIXTRAL_8X7B.num_layers,
        "systems": {},
        "failures": [],
    }
    for name in SYSTEMS:
        t0 = time.perf_counter()
        timings = {
            policy: run_model(
                SYSTEM_REGISTRY.create(name), MIXTRAL_8X7B, cluster, STRATEGY,
                tokens, overlap_policy=policy,
            )
            for policy in OVERLAP_POLICIES
        }
        wall_s = time.perf_counter() - t0
        per, cross, short = (
            timings["per_layer"], timings["cross_layer"], timings["shortcut"]
        )

        # Contract 1: per_layer graph composition == legacy additive total.
        system = SYSTEM_REGISTRY.create(name)
        phases = system.lower_layer(per.moe)
        composed = forward_makespan(
            phases, per.attention_us, per.num_layers, "per_layer"
        )
        if composed != per.total_us:
            payload["failures"].append(f"{name}: per_layer not bit-identical")
        # Contract 2: cross-layer policies strictly faster.
        if not (cross.makespan_us < per.total_us > short.makespan_us):
            payload["failures"].append(f"{name}: no strict cross-layer gain")
        # Contract 3: analytic == DES on the unrolled cross_layer graph.
        graph = build_forward_graph(
            phases, per.attention_us, per.num_layers, "cross_layer"
        )
        analytic = list_schedule(graph)
        des_finish, des_makespan = des_schedule(graph)
        if analytic.finish_us != des_finish or (
            analytic.makespan_us != des_makespan
        ):
            payload["failures"].append(f"{name}: analytic/DES divergence")

        payload["systems"][name] = {
            "per_layer_ms": per.makespan_ms,
            "cross_layer_ms": cross.makespan_ms,
            "shortcut_ms": short.makespan_ms,
            "cross_layer_speedup": per.total_us / cross.makespan_us,
            "shortcut_speedup": per.total_us / short.makespan_us,
            "graph_nodes": len(graph),
            "wall_s": wall_s,
        }
    return payload


def test_model_graph(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    assert not payload["failures"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller token count for CI smoke runs (contracts still enforced)",
    )
    parser.add_argument("--out", default="BENCH_model_graph.json", metavar="PATH")
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    for name, doc in payload["systems"].items():
        print(
            f"{name:18s} per_layer {doc['per_layer_ms']:8.2f} ms   "
            f"cross_layer {doc['cross_layer_ms']:8.2f} ms "
            f"({doc['cross_layer_speedup']:.3f}x)   "
            f"shortcut {doc['shortcut_ms']:8.2f} ms "
            f"({doc['shortcut_speedup']:.3f}x)"
        )
    for failure in payload["failures"]:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
