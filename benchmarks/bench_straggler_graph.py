"""Per-rank straggler schedule-graph benchmark: uniform identity + skew cost.

Times a figure-sized model (Mixtral-8x7B, 32 layers) on an H800 node
under per-rank straggler specs for every system and overlap policy,
enforcing the straggler IR's contracts while measuring:

* the **uniform** spec's per-rank graph makespan must equal the
  single-rank graph makespan bit for bit (the degenerate-case identity
  guarantee);
* a 1.5x slow-rank preset must be strictly slower end to end, with the
  slow rank on the critical path;
* the analytic list scheduler must agree exactly with the DES reference
  executor on every per-rank graph it prices;
* reported wall time covers lowering + scheduling of the per-rank
  graphs (8 stream pairs, cross-rank barrier edges) so regressions in
  the multi-rank path show up as a throughput drop.

Run directly (CI smoke step) to emit ``BENCH_straggler_graph.json``::

    python benchmarks/bench_straggler_graph.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import (
    MIXTRAL_8X7B,
    ParallelStrategy,
    SYSTEM_REGISTRY,
    StragglerSpec,
    h800_node,
    run_model,
)
from repro.graph import (
    OVERLAP_POLICIES,
    build_forward_graph,
    des_schedule,
    list_schedule,
)

STRATEGY = ParallelStrategy(tp_size=1, ep_size=8)
SYSTEMS = ("megatron-cutlass", "tutel", "comet")
SLOW_MULT = 1.5


def run_benchmark(quick: bool = False) -> dict:
    cluster = h800_node()
    tokens = 4096 if quick else 16384
    uniform = StragglerSpec.uniform(STRATEGY.world_size)
    slow = StragglerSpec.slow_rank(
        STRATEGY.world_size, rank=0, compute_mult=SLOW_MULT
    )
    payload: dict = {
        "model": MIXTRAL_8X7B.name,
        "cluster": cluster.name,
        "strategy": str(STRATEGY),
        "tokens": tokens,
        "num_layers": MIXTRAL_8X7B.num_layers,
        "slow_mult": SLOW_MULT,
        "systems": {},
        "failures": [],
    }
    for name in SYSTEMS:
        system = SYSTEM_REGISTRY.create(name)
        timing = run_model(system, MIXTRAL_8X7B, cluster, STRATEGY, tokens)
        phases = system.lower_layer(timing.moe)
        doc: dict = {"policies": {}}
        t0 = time.perf_counter()
        for policy in OVERLAP_POLICIES:
            single = list_schedule(
                build_forward_graph(
                    phases, timing.attention_us, timing.num_layers, policy
                )
            )
            per_rank_graph = build_forward_graph(
                system.lower_rank_phases(timing.moe, uniform),
                timing.attention_us,
                timing.num_layers,
                policy,
                uniform,
            )
            per_rank = list_schedule(per_rank_graph)
            # Contract 1: uniform degenerate case is bit-identical.
            if per_rank.makespan_us != single.makespan_us:
                payload["failures"].append(
                    f"{name}/{policy}: uniform per-rank makespan != single-rank"
                )
            if per_rank.imbalance_us() != 0.0:
                payload["failures"].append(
                    f"{name}/{policy}: uniform spec shows imbalance"
                )
            slow_graph = build_forward_graph(
                system.lower_rank_phases(timing.moe, slow),
                timing.attention_us,
                timing.num_layers,
                policy,
                slow,
            )
            slowed = list_schedule(slow_graph)
            # Contract 2: the slow rank strictly stretches the makespan
            # and paces the critical path.
            if not slowed.makespan_us > single.makespan_us:
                payload["failures"].append(
                    f"{name}/{policy}: slow rank not strictly slower"
                )
            if not any(n.stream.rank == 0 for n in slowed.critical_path()):
                payload["failures"].append(
                    f"{name}/{policy}: slow rank missing from critical path"
                )
            # Contract 3: analytic == DES on the per-rank graph.
            finish, makespan = des_schedule(slow_graph)
            if finish != slowed.finish_us or makespan != slowed.makespan_us:
                payload["failures"].append(
                    f"{name}/{policy}: analytic/DES divergence"
                )
            doc["policies"][policy] = {
                "single_rank_ms": single.makespan_us / 1000.0,
                "slow_rank_ms": slowed.makespan_us / 1000.0,
                "straggler_slowdown": slowed.makespan_us / single.makespan_us,
                "imbalance_ms": slowed.imbalance_us() / 1000.0,
                "straggler_rank": slowed.straggler_rank(),
                "graph_nodes": len(slow_graph),
                "graph_streams": len(slow_graph.streams()),
            }
        doc["wall_s"] = time.perf_counter() - t0
        payload["systems"][name] = doc
    return payload


def test_straggler_graph(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    assert not payload["failures"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller token count for CI smoke runs (contracts still enforced)",
    )
    parser.add_argument(
        "--out", default="BENCH_straggler_graph.json", metavar="PATH"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    for name, doc in payload["systems"].items():
        for policy, row in doc["policies"].items():
            print(
                f"{name:18s} {policy:12s} single {row['single_rank_ms']:8.2f} ms   "
                f"slow-rank {row['slow_rank_ms']:8.2f} ms "
                f"({row['straggler_slowdown']:.3f}x, imbalance "
                f"{row['imbalance_ms']:.3f} ms)"
            )
    for failure in payload["failures"]:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if payload["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
