"""Figure 14 (left): MoE layer under imbalanced token distributions.

Paper claims: as the std of per-expert token fractions grows from 0 to
0.05 (production average: 0.032), every system slows down — the most
loaded expert paces the layer — but Comet consistently outperforms the
others at every imbalance level.
"""

from repro.bench import fig14_imbalance


def test_fig14_imbalance(run_once):
    result = run_once(fig14_imbalance)
    print("\n" + result.format())

    durations = result.durations_ms
    stds = sorted(durations)

    # Load imbalance prolongs the layer for every system.
    for system in ("Megatron-Cutlass", "Tutel", "Comet"):
        series = [durations[std][system] for std in stds]
        assert series[-1] > series[0] * 1.2, system
        # Monotone within noise: each step never shrinks by more than 5%.
        for a, b in zip(series, series[1:]):
            assert b > 0.95 * a, system

    # Comet best at every std, including the production value 0.032.
    for std in stds:
        comet = durations[std]["Comet"]
        for system, value in durations[std].items():
            if system != "Comet":
                assert comet < value, (std, system)
