"""Ablation: shared-tensor rescheduling on/off (paper §3.1.2).

Isolates the contribution of the two rescheduling policies: sorting
layer0 tokens by source rank (Figure 5) and iterating the layer1
GroupGEMM column-major (Figure 6).  Without them the shared tensors keep
token order / expert-major order and fine-grained overlap degrades.
"""

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet


def run_ablation(tokens: int = 16384):
    workload = make_workload(
        MIXTRAL_8X7B, h800_node(), ParallelStrategy(1, 8), tokens
    )
    with_resched = Comet(reschedule=True).time_layer(workload)
    without = Comet(reschedule=False).time_layer(workload)
    return with_resched, without


def test_ablation_reschedule(run_once):
    with_resched, without = run_once(run_ablation)
    print(
        f"\nreschedule on : {with_resched.total_us / 1000:.3f} ms "
        f"(hidden {100 * with_resched.hidden_comm_fraction:.1f}%)"
        f"\nreschedule off: {without.total_us / 1000:.3f} ms "
        f"(hidden {100 * without.hidden_comm_fraction:.1f}%)"
    )
    # Rescheduling must help (or at worst tie) both hiding and total time.
    assert with_resched.total_us <= without.total_us + 1e-6
    assert (
        with_resched.hidden_comm_fraction
        >= without.hidden_comm_fraction - 1e-9
    )
