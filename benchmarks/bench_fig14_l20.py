"""Figure 14 (right): MoE layer on the bandwidth-limited L20/PCIe node.

Paper claims: on 8x L20 over PCIe (~25 GB/s), Comet still beats every
baseline across parallel strategies, with average speedups of
1.19x-1.46x — smaller than on H800 because the slow fabric leaves less
communication latency hideable under the (also slower) compute.
"""

import numpy as np

from repro.bench import fig14_l20


def test_fig14_l20(run_once):
    result = run_once(fig14_l20)
    print("\n" + result.format())

    durations = result.durations_ms

    # Comet is fastest under every strategy on the PCIe node too.
    speedups = []
    for strategy, systems in durations.items():
        comet = systems["Comet"]
        for name, value in systems.items():
            if name != "Comet":
                assert comet < value, (strategy, name)
                speedups.append(value / comet)

    # Mean speedup in a band around the paper's 1.19x-1.46x.
    mean_speedup = float(np.mean(speedups))
    assert 1.05 < mean_speedup < 2.2
