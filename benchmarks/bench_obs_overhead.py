"""Observability overhead: the zero-perturbation layer must be free.

The `repro.obs` design keeps observation out of every simulation hot
loop: traces are built *post hoc* from artifacts the simulators already
compute, and the global enable flag gates emission only.  This harness
verifies the two consequences that make the layer safe to leave on:

* **cost when off ≈ cost when on** — the simulation wall-clock with
  observability disabled is within 5% of the wall-clock with it enabled
  (medians over interleaved repeats), because neither arm does any
  observation work during simulation;
* **results are bit-identical** — the exported JSON matches byte-for-
  byte across the two arms (the structural guarantee, re-checked here
  under the benchmark workload);
* the one real cost — building and validating the Chrome traces from
  the finished reports — is paid only on demand, and is reported so
  regressions in the builders are visible.

Run directly (CI smoke step) to emit ``BENCH_obs_overhead.json``::

    python benchmarks/bench_obs_overhead.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro import FleetSpec, ServeSpec, TraceSpec, obs, perf
from repro.fleet import FailureEvent
from repro.obs import (
    snapshot_for,
    trace_fleet_report,
    trace_serve_report,
    validate_chrome_trace,
)

OVERHEAD_LIMIT_PCT = 5.0


def _serve_spec(quick: bool) -> ServeSpec:
    return ServeSpec.grid(
        traces=TraceSpec(
            kind="poisson",
            rps=60.0 if quick else 120.0,
            duration_s=4.0 if quick else 8.0,
            seed=0,
        ),
        systems="comet",
    )


def _fleet_spec(quick: bool) -> FleetSpec:
    return FleetSpec.grid(
        replicas=2,
        traces=TraceSpec(
            kind="bursty",
            rps=60.0 if quick else 120.0,
            duration_s=4.0 if quick else 8.0,
            seed=1,
        ),
        failures=(FailureEvent(replica=0, fail_ms=300.0, recover_ms=900.0),),
        systems="comet",
    )


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_spec(make_spec, repeats: int, inner: int) -> dict:
    """Interleaved obs-off / obs-on timings of one spec family.

    Each sample times ``inner`` back-to-back runs so one sample is long
    enough (hundreds of ms) for a 5% difference to dwarf scheduler
    jitter; the best-of-N estimator is then the standard noise-robust
    choice, since jitter only ever inflates a sample.
    """

    def run_many():
        for _ in range(inner):
            results = make_spec().run()
        return results

    make_spec().run()  # warm the shared timing caches for both arms
    off_s: list[float] = []
    on_s: list[float] = []
    exports: dict[str, str] = {}
    for repeat in range(repeats):
        # Alternate which arm runs first so slow drift (allocator state,
        # frequency scaling) cannot systematically favour either arm.
        arms = [("off", obs.disabled, off_s), ("on", obs.enabled, on_s)]
        if repeat % 2:
            arms.reverse()
        for label, context, samples in arms:
            with context():
                elapsed, results = _timed(run_many)
                samples.append(elapsed)
                exports[label] = results.to_json()
    best_off = min(off_s)
    best_on = min(on_s)
    return {
        "repeats": repeats,
        "runs_per_sample": inner,
        "best_off_s": best_off,
        "best_on_s": best_on,
        "median_off_s": statistics.median(off_s),
        "median_on_s": statistics.median(on_s),
        "overhead_pct": 100.0 * abs(best_on - best_off) / best_off,
        "identical_exports": exports["off"] == exports["on"],
        "last_results": results,
    }


def bench_trace_build(serve_results, fleet_results) -> dict:
    """The on-demand cost: rendering + validating the Chrome traces."""
    serve_s, serve_tracer = _timed(
        lambda: trace_serve_report(serve_results.reports[0])
    )
    fleet_s, fleet_tracer = _timed(
        lambda: trace_fleet_report(fleet_results.reports[0])
    )
    validate_s, _ = _timed(
        lambda: (
            validate_chrome_trace(serve_tracer.to_chrome_trace()),
            validate_chrome_trace(fleet_tracer.to_chrome_trace()),
        )
    )
    snapshot_s, _ = _timed(lambda: snapshot_for(fleet_results))
    return {
        "serve_trace_s": serve_s,
        "fleet_trace_s": fleet_s,
        "validate_s": validate_s,
        "metrics_snapshot_s": snapshot_s,
        "serve_records": len(serve_tracer.events),
        "fleet_records": len(fleet_tracer.events),
    }


def run_benchmark(quick: bool = False) -> dict:
    repeats = 5 if quick else 7
    inner = 3 if quick else 5
    perf.clear_caches()
    serve = bench_spec(lambda: _serve_spec(quick), repeats, inner)
    fleet = bench_spec(lambda: _fleet_spec(quick), repeats, inner)
    serve_results = serve.pop("last_results")
    fleet_results = fleet.pop("last_results")
    return {
        "benchmark": "obs_overhead",
        "mode": "quick" if quick else "full",
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        "serve": serve,
        "fleet": fleet,
        "trace_build": bench_trace_build(serve_results, fleet_results),
    }


def _check(payload: dict) -> list[str]:
    """The acceptance conditions; returns human-readable failures."""
    failures = []
    for name in ("serve", "fleet"):
        arm = payload[name]
        if not arm["identical_exports"]:
            failures.append(f"{name}: exports differ with obs on vs off")
        if arm["overhead_pct"] >= OVERHEAD_LIMIT_PCT:
            failures.append(
                f"{name}: obs on/off wall-clock differs by "
                f"{arm['overhead_pct']:.2f}% (limit {OVERHEAD_LIMIT_PCT}%)"
            )
    return failures


def test_obs_overhead(run_once):
    payload = run_once(run_benchmark, quick=True)
    print()
    print(json.dumps(payload, indent=2))
    # Timing comparisons are environment-sensitive; under pytest only the
    # structural guarantee is a hard assertion.  The CLI entry point (and
    # the CI smoke step) enforces the wall-clock limit too.
    assert payload["serve"]["identical_exports"]
    assert payload["fleet"]["identical_exports"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller traces for CI smoke runs (acceptance still enforced)",
    )
    parser.add_argument(
        "--out", default="BENCH_obs_overhead.json", metavar="PATH"
    )
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    for name in ("serve", "fleet"):
        arm = payload[name]
        print(
            f"{name}: off {arm['best_off_s'] * 1000:.1f}ms / "
            f"on {arm['best_on_s'] * 1000:.1f}ms "
            f"({arm['overhead_pct']:.2f}% apart), "
            f"identical={arm['identical_exports']}"
        )
    build = payload["trace_build"]
    print(
        f"trace build: serve {build['serve_trace_s'] * 1000:.1f}ms "
        f"({build['serve_records']} spans), fleet "
        f"{build['fleet_trace_s'] * 1000:.1f}ms "
        f"({build['fleet_records']} spans), validate "
        f"{build['validate_s'] * 1000:.1f}ms"
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
