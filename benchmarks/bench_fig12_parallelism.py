"""Figure 12: single MoE layer under different TP x EP strategies.

Paper claims: baselines slow down as TP grows (fragmented expert GEMMs);
FasterMoE cannot run TP at all; Comet maintains low latency across all
strategies (rescheduled shared tensors keep compute efficient).
"""

from repro.bench import fig12_parallelism


def test_fig12_parallelism(run_once):
    result = run_once(fig12_parallelism)
    print("\n" + result.format())

    durations = result.durations_ms
    strategies = list(durations)

    # FasterMoE exists only in the pure-EP column.
    for strategy, systems in durations.items():
        if strategy == "TP1xEP8":
            assert "FasterMoE" in systems
        else:
            assert "FasterMoE" not in systems

    # Comet is fastest under every strategy.
    for strategy, systems in durations.items():
        comet = systems["Comet"]
        for name, value in systems.items():
            if name != "Comet":
                assert comet < value, (strategy, name)

    # Baselines degrade monotonically from pure EP to pure TP (fragmented
    # expert GEMMs + TP collectives); Comet stays flat-ish.
    tp_order = ["TP1xEP8", "TP2xEP4", "TP4xEP2", "TP8xEP1"]
    for system in ("Megatron-Cutlass", "Megatron-TE", "Tutel"):
        series = [durations[s][system] for s in tp_order]
        assert all(b >= a * 0.98 for a, b in zip(series, series[1:])), system
        assert series[-1] > 1.2 * series[0], system
    comet_spread = max(d["Comet"] for d in durations.values()) / min(
        d["Comet"] for d in durations.values()
    )
    assert comet_spread < 1.6
