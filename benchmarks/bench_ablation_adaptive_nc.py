"""Ablation: adaptive vs static thread-block assignment (paper §3.2.2).

A single static division point cannot serve every shape and strategy:
the profile-then-select mechanism must match or beat any fixed nc across
a mix of workloads, and clearly beat badly chosen fixed points.
"""

import numpy as np

from repro.hw import h800_node
from repro.moe import MIXTRAL_8X7B
from repro.parallel import ParallelStrategy
from repro.runtime import make_workload
from repro.systems import Comet


def run_ablation():
    workloads = [
        make_workload(MIXTRAL_8X7B, h800_node(), strategy, tokens)
        for strategy in ParallelStrategy.sweep(8)
        for tokens in (4096, 16384)
    ]
    adaptive = Comet(adaptive=True)
    adaptive_total = sum(adaptive.time_layer(w).total_us for w in workloads)
    fixed_totals = {}
    for nc in (4, 16, 32, 64):
        system = Comet(fixed_nc=nc)
        fixed_totals[nc] = sum(system.time_layer(w).total_us for w in workloads)
    return adaptive_total, fixed_totals


def test_ablation_adaptive_nc(run_once):
    adaptive_total, fixed_totals = run_once(run_ablation)
    print(f"\nadaptive: {adaptive_total / 1000:.3f} ms over the workload mix")
    for nc, total in sorted(fixed_totals.items()):
        print(f"fixed nc={nc:3d}: {total / 1000:.3f} ms")

    # Adaptive selection beats every static choice on the mix (within a
    # hair of the best, since the best static point may tie per-workload).
    best_fixed = min(fixed_totals.values())
    assert adaptive_total <= best_fixed * 1.02
    # And clearly beats poor static choices.
    assert adaptive_total < 0.9 * max(fixed_totals.values())
