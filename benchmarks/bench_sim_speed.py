"""Simulation-core speed benchmark: fast paths vs the serial reference.

Measures the two workloads the perf layer was built for and enforces the
equivalence contract while doing so:

* **serve** — a world-16 balanced COMET serving run (2-node H800 pod,
  TP2 x EP8, large continuous batches), timed with every fast path off
  (:func:`repro.perf.disabled` — the original per-tile heapq loops, the
  undeduplicated rank loops, and the event-machinery DES) and again with
  the fast paths on.  Bucket workloads are pre-built once and shared by
  both runs (workload caching predates the perf layer), so the
  comparison isolates the simulator itself.  A warm repeat on a fresh
  COMET instance then shows the cross-instance
  :data:`repro.perf.TIMING_CACHE` sharing (``timing_key`` resolves the
  adaptive division points instead of cold-missing per instance).
  Reports must match byte for byte.
* **grid** — a figure-sized scenario sweep (Figure 12 shape: one model,
  parallelism x token axes, all five systems) on the same pod, slow
  serial vs fast; plus a warm repeat of the fast run showing the
  cross-run :data:`repro.perf.TIMING_CACHE` at work.  ResultSets must
  match byte for byte.

Run directly (CI smoke step) to emit ``BENCH_sim_speed.json``::

    python benchmarks/bench_sim_speed.py [--quick] [--out PATH]

or under pytest-benchmark like the other harnesses.
"""

from __future__ import annotations

import argparse
import json
import time

from repro import (
    MIXTRAL_8X7B,
    ExperimentSpec,
    ParallelStrategy,
    SYSTEM_REGISTRY,
    perf,
)
from repro.hw.multinode import h800_pod
from repro.serve import ServeScenario, TraceSpec

WORLD_SIZE = 16
STRATEGY = ParallelStrategy(tp_size=2, ep_size=8)

# Wall-clock floors the perf layer must clear (the PR's acceptance bar).
SERVE_TARGET = 5.0
GRID_TARGET = 2.0


def _cluster():
    return h800_pod(WORLD_SIZE // 8).effective_cluster()


def bench_serve(quick: bool = False) -> dict:
    """Time one balanced COMET serving run, slow path vs fast path."""
    scenario = ServeScenario(
        config=MIXTRAL_8X7B,
        cluster=_cluster(),
        strategy=STRATEGY,
        trace=TraceSpec(
            kind="poisson",
            rps=75.0 if quick else 150.0,
            duration_s=4.0 if quick else 8.0,
            seed=0,
            prompt_mean=4096,
            output_mean=16,
        ),
        max_batch_tokens=131072,
        bucket_tokens=4096,
    )
    trace = scenario.build_trace()
    perf.clear_caches()

    # Warm the shared bucket workloads (and their geometry caches): both
    # timed runs price identical pre-built batch geometry, so the
    # measurement isolates scheduler + kernel simulation.
    warm = scenario.run_system(SYSTEM_REGISTRY.create("comet"), trace=trace)

    perf.TIMING_CACHE.clear()
    t0 = time.perf_counter()
    with perf.disabled():
        slow = scenario.run_system(SYSTEM_REGISTRY.create("comet"), trace=trace)
    slow_s = time.perf_counter() - t0
    slow_calls = perf.time_layer_calls()

    perf.TIMING_CACHE.clear()
    t0 = time.perf_counter()
    fast = scenario.run_system(SYSTEM_REGISTRY.create("comet"), trace=trace)
    fast_s = time.perf_counter() - t0
    fast_calls = perf.time_layer_calls()

    # Warm repeat on a *fresh* COMET instance with the cache left hot:
    # timing entries key on resolved per-workload state (the adaptive
    # division points via ``timing_key``), not on instance identity, so
    # the repeat prices every bucket from the cache.
    t0 = time.perf_counter()
    repeat = scenario.run_system(SYSTEM_REGISTRY.create("comet"), trace=trace)
    repeat_s = time.perf_counter() - t0
    repeat_calls = perf.time_layer_calls() - fast_calls

    identical = (
        slow.records == fast.records
        and slow.timeline == fast.timeline
        and warm.records == fast.records
        and repeat.records == fast.records
        and json.dumps(slow.summary(), sort_keys=True)
        == json.dumps(fast.summary(), sort_keys=True)
    )
    return {
        "scenario": scenario.label,
        "world_size": scenario.cluster.world_size,
        "requests": fast.num_requests,
        "engine_steps": len(fast.timeline),
        "wall_s_slow": slow_s,
        "wall_s_fast": fast_s,
        "wall_s_fast_repeat": repeat_s,
        "speedup": slow_s / fast_s,
        "target_speedup": SERVE_TARGET,
        "time_layer_calls_slow": slow_calls,
        "time_layer_calls_fast": fast_calls,
        "time_layer_calls_repeat": repeat_calls,
        "identical_output": identical,
        "caches": perf.cache_stats(),
    }


def _grid_spec(quick: bool) -> ExperimentSpec:
    tokens = (8192,) if quick else (8192, 16384, 32768)
    return ExperimentSpec.grid(
        models="mixtral",
        clusters=_cluster(),
        strategies=[(2, 8), (4, 4)],
        tokens=tokens,
    )


def bench_grid(quick: bool = False) -> dict:
    """Time a figure-sized sweep, slow serial vs fast, plus a warm repeat."""
    spec = _grid_spec(quick)
    perf.clear_caches()
    for _scenario, _workload in spec.workloads():  # shared workload warm-up
        pass

    perf.TIMING_CACHE.clear()
    t0 = time.perf_counter()
    with perf.disabled():
        slow = spec.run()
    slow_s = time.perf_counter() - t0
    slow_calls = perf.time_layer_calls()

    perf.TIMING_CACHE.clear()
    t0 = time.perf_counter()
    fast = spec.run()
    fast_s = time.perf_counter() - t0
    fast_calls = perf.time_layer_calls()

    # Warm repeat: the cross-run TimingCache prices repeated (system,
    # workload) pairs from memory (history-free systems share across
    # instances; COMET's adaptive profiles are instance-scoped).
    t0 = time.perf_counter()
    repeat = spec.run()
    repeat_s = time.perf_counter() - t0

    identical = (
        slow.to_json() == fast.to_json() and fast.to_json() == repeat.to_json()
    )
    return {
        "scenarios": len(tuple(dict.fromkeys(spec.scenarios))),
        "rows": len(fast),
        "wall_s_slow": slow_s,
        "wall_s_fast": fast_s,
        "wall_s_fast_repeat": repeat_s,
        "speedup": slow_s / fast_s,
        "target_speedup": GRID_TARGET,
        "time_layer_calls_slow": slow_calls,
        "time_layer_calls_fast": fast_calls,
        "identical_output": identical,
        "caches": perf.cache_stats(),
    }


def run_benchmark(quick: bool = False) -> dict:
    return {
        "benchmark": "sim_speed",
        "mode": "quick" if quick else "full",
        "serve": bench_serve(quick),
        "grid": bench_grid(quick),
    }


def _check(payload: dict) -> list[str]:
    """The acceptance conditions; returns human-readable failures."""
    failures = []
    serve, grid = payload["serve"], payload["grid"]
    if not serve["identical_output"]:
        failures.append("serve fast path is not byte-identical to the slow path")
    if not grid["identical_output"]:
        failures.append("grid fast path is not byte-identical to the slow path")
    if payload["mode"] == "full":
        if serve["speedup"] < SERVE_TARGET:
            failures.append(
                f"serve speedup {serve['speedup']:.2f}x < {SERVE_TARGET}x"
            )
        if grid["speedup"] < GRID_TARGET:
            failures.append(f"grid speedup {grid['speedup']:.2f}x < {GRID_TARGET}x")
    return failures


def test_sim_speed(run_once):
    payload = run_once(run_benchmark)
    print()
    print(json.dumps(payload, indent=2))
    assert not _check(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller trace/grid for CI smoke runs (equivalence still enforced)",
    )
    parser.add_argument("--out", default="BENCH_sim_speed.json", metavar="PATH")
    args = parser.parse_args()
    payload = run_benchmark(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    serve, grid = payload["serve"], payload["grid"]
    print(
        f"serve: {serve['wall_s_slow']:.3f}s -> {serve['wall_s_fast']:.3f}s "
        f"({serve['speedup']:.2f}x, warm repeat {serve['wall_s_fast_repeat']:.3f}s "
        f"at {serve['time_layer_calls_repeat']} fresh time_layer calls, "
        f"identical={serve['identical_output']})"
    )
    print(
        f"grid:  {grid['wall_s_slow']:.3f}s -> {grid['wall_s_fast']:.3f}s "
        f"({grid['speedup']:.2f}x, repeat {grid['wall_s_fast_repeat']:.3f}s, "
        f"identical={grid['identical_output']})"
    )
    failures = _check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    print(f"wrote {args.out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
