"""Figure 8: layer1 fused-kernel duration vs communication-block count.

Paper claims: the duration curve over nc has an interior optimum; the
optimal division point shifts with the input length (TP=8: 18 -> 26 as M
goes 4096 -> 16384) and moves substantially with the parallel strategy
(TP=8 -> TP=4 at M=16384: 26 -> 46).
"""

from repro.bench import fig08_nc_sweep


def test_fig08_nc_sweep(run_once):
    result = run_once(fig08_nc_sweep)
    print("\n" + result.format())

    for curve in result.curves:
        ncs = sorted(curve.durations_us)
        durations = [curve.durations_us[nc] for nc in ncs]
        # Interior optimum: the best nc is neither the smallest nor the
        # largest viable division point.
        assert curve.best_nc != ncs[0], curve
        assert curve.best_nc != ncs[-1], curve
        # The curve actually bends: the optimum clearly beats both ends.
        assert durations[0] > curve.durations_us[curve.best_nc] * 1.05
        assert durations[-1] > curve.durations_us[curve.best_nc] * 1.05

    # Paper's headline shifts, as bands rather than exact integers:
    # TP=8 optimum in the high-teens-to-thirties and not decreasing in M;
    nc_tp8_small = result.best_nc(8, 1, 4096)
    nc_tp8_large = result.best_nc(8, 1, 16384)
    assert 12 <= nc_tp8_small <= 40
    assert nc_tp8_large >= nc_tp8_small
    # TP=4 needs substantially more communication blocks than TP=8
    # (token-granular EP traffic; paper: 46 vs 26).
    nc_tp4_large = result.best_nc(4, 2, 16384)
    assert nc_tp4_large > nc_tp8_large
    assert 36 <= nc_tp4_large <= 60
