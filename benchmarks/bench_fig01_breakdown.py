"""Figure 1(a): time breakdown of MoE models under Megatron on 8xH800.

Paper claim: inter-device communication of the MoE layers occupies ~47%
of end-to-end execution time on average across Mixtral-8x7B, Qwen2-MoE
and Phi-3.5-MoE at sequence lengths 4096 and 8192.
"""

from repro.bench import fig01_time_breakdown


def test_fig01_time_breakdown(run_once):
    result = run_once(fig01_time_breakdown)
    print("\n" + result.format())

    # Communication is a large share of execution for every model...
    for row in result.rows:
        assert row.comm_fraction > 0.25, row
    # ...roughly half on average (paper: 0.47).
    assert 0.35 < result.mean_comm_fraction < 0.70
    # MoE layers dominate these models' runtime.
    assert all(r.moe_fraction > 0.5 for r in result.rows)
