"""Legacy setup shim: the sandbox lacks the `wheel` package, so editable
installs must go through `pip install -e . --no-use-pep517`."""

from setuptools import setup

setup()
